//! The XPoint controller.
//!
//! The memory controller cannot talk to XPoint media directly (paper,
//! Section II-C): the media runs at its own clock and wears out under
//! intensive writes. The XPoint controller sits in between — in Ohm-GPU it
//! is integrated *inside* the XPoint stack as a logic layer (Section III-A)
//! — and provides:
//!
//! * request buffering and asynchronous processing (DDR-T handshake);
//! * address translation and wear leveling via [`StartGap`], eliminating
//!   the external DRAM metadata buffer;
//! * the **snarf** capability (hooking command/address/data off the channel)
//!   that powers the auto-read/write function;
//! * the **DDR sequence generator** that lets it drive DRAM read/write
//!   transactions directly during the swap function (Figure 11).
//!
//! Channel serialisation time is *not* modelled here; the caller (memory
//! controller / migration engine) books the channel and hands this
//! controller the instant at which command+data are present at its pins.
//!
//! # Fault model
//!
//! The DDR-T protocol exists precisely because XPoint media latency is
//! nondeterministic (Section II-C): the controller signals readiness
//! instead of the host counting cycles. The fault-injection subsystem
//! exploits that slack — [`XPointController::inject_faults`] arms a
//! deterministic RNG that makes a media operation *stall* with a
//! configured probability. A stalled op times out after
//! [`XpFaultConfig::stall`] and is reissued to the media; after
//! [`XpFaultConfig::max_retries`] reissues the line is *poisoned*
//! (tracked, counted, served best-effort) rather than retried forever —
//! the capped-retry → poison escalation surfaced in `SimReport`.

use std::collections::BTreeSet;

use ohm_sim::{Addr, Calendar, Ps, SplitMix64};

use crate::wear::{StartGap, WearStats};
use crate::xpoint::{XPointConfig, XPointMedia};

/// Timing/configuration of the XPoint controller itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XpCtrlConfig {
    /// Per-request protocol-engine occupancy (ingress processing).
    pub ctrl_overhead: Ps,
    /// One-way DDR-T handshake latency (ready/confirm signalling).
    pub ddrt_handshake: Ps,
    /// Start-Gap rotation period, in writes.
    pub psi: u32,
    /// Media configuration.
    pub media: XPointConfig,
}

impl Default for XpCtrlConfig {
    fn default() -> Self {
        XpCtrlConfig {
            ctrl_overhead: Ps::from_ns(5),
            ddrt_handshake: Ps::from_ns(10),
            psi: 128,
            media: XPointConfig::default(),
        }
    }
}

/// Media fault-injection knobs for one XPoint controller.
///
/// All-zero (the default, [`XpFaultConfig::NONE`]) injects nothing and
/// draws nothing from the RNG, so a controller armed with a quiescent
/// config is bit-identical to an unarmed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XpFaultConfig {
    /// Probability, in parts-per-million per media operation, that the
    /// operation stalls past its DDR-T window and must be reissued.
    pub stall_ppm: u32,
    /// The DDR-T timeout waited before reissuing a stalled operation.
    pub stall: Ps,
    /// Reissues allowed before the line is poisoned instead.
    pub max_retries: u32,
}

impl XpFaultConfig {
    /// No injected faults.
    pub const NONE: XpFaultConfig = XpFaultConfig {
        stall_ppm: 0,
        stall: Ps::ZERO,
        max_retries: 0,
    };
}

impl Default for XpFaultConfig {
    fn default() -> Self {
        XpFaultConfig::NONE
    }
}

/// Completion report for a controller operation.
///
/// Besides the final `ready_at`, the completion carries the internal
/// stage boundaries so the observability layer can split controller
/// latency into ingress / media / handshake portions without changing
/// any timing:
///
/// `accepted_at` ≤ `media_done` ≤ `ready_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XpCompletion {
    /// When the protocol engine finished ingress processing and the
    /// request entered the media path.
    pub accepted_at: Ps,
    /// When the media finished its part (read data at the logic layer /
    /// write buffered persistently), before the DDR-T handshake back.
    pub media_done: Ps,
    /// When the operation's result is available at the controller pins
    /// (read data ready / write acknowledged).
    pub ready_at: Ps,
    /// Media reissues this operation needed (0 on the fault-free path).
    /// Page operations report the sum over their lines.
    pub retries: u32,
}

/// The logic-layer XPoint controller: protocol engine, Start-Gap
/// translation, and the media behind it.
///
/// # Example
///
/// ```
/// use ohm_mem::xpoint_ctrl::{XpCtrlConfig, XPointController};
/// use ohm_sim::{Addr, Ps};
///
/// let mut ctrl = XPointController::new(XpCtrlConfig::default());
/// let done = ctrl.read(Ps::ZERO, Addr::new(0));
/// // Overhead + media read + DDR-T ready signal.
/// assert_eq!(done.ready_at, Ps::from_ns(5 + 190 + 10));
/// ```
#[derive(Debug, Clone)]
pub struct XPointController {
    cfg: XpCtrlConfig,
    media: XPointMedia,
    map: StartGap,
    /// Protocol-engine ingress: one request at a time.
    engine: Calendar,
    wear_move_reads: u64,
    wear_move_writes: u64,
    faults: XpFaultConfig,
    fault_rng: Option<SplitMix64>,
    media_stalls: u64,
    media_retries: u64,
    poisoned: BTreeSet<u64>,
}

impl XPointController {
    /// Creates an idle controller over fresh media.
    pub fn new(cfg: XpCtrlConfig) -> Self {
        let lines = (cfg.media.capacity_bytes / cfg.media.line_bytes).max(1);
        XPointController {
            media: XPointMedia::new(cfg.media),
            map: StartGap::new(lines, cfg.psi),
            engine: Calendar::new(),
            cfg,
            wear_move_reads: 0,
            wear_move_writes: 0,
            faults: XpFaultConfig::NONE,
            fault_rng: None,
            media_stalls: 0,
            media_retries: 0,
            poisoned: BTreeSet::new(),
        }
    }

    /// Arms media fault injection with a dedicated RNG stream.
    ///
    /// A zero `stall_ppm` keeps the controller exactly on the fault-free
    /// path (no RNG draws), preserving bit-identity with an unarmed run.
    pub fn inject_faults(&mut self, faults: XpFaultConfig, rng: SplitMix64) {
        self.faults = faults;
        self.fault_rng = Some(rng);
    }

    /// Media operations that stalled past their DDR-T window.
    pub fn media_stalls(&self) -> u64 {
        self.media_stalls
    }

    /// Media reissues performed after stalls.
    pub fn media_retries(&self) -> u64 {
        self.media_retries
    }

    /// Lines poisoned after exhausting their retry budget.
    pub fn poisoned_lines(&self) -> u64 {
        self.poisoned.len() as u64
    }

    /// Whether a stall is drawn for the next media attempt.
    fn draw_stall(&mut self) -> bool {
        if self.faults.stall_ppm == 0 {
            return false;
        }
        match self.fault_rng.as_mut() {
            Some(rng) => rng.next_below(1_000_000) < self.faults.stall_ppm as u64,
            None => false,
        }
    }

    /// Controller configuration.
    pub fn config(&self) -> &XpCtrlConfig {
        &self.cfg
    }

    /// The media line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.cfg.media.line_bytes
    }

    fn translate(&self, addr: Addr) -> Addr {
        self.map.translate_addr(addr, self.cfg.media.line_bytes)
    }

    fn media_attempt(&mut self, at: Ps, phys: Addr, write: bool) -> Ps {
        if write {
            self.media.write(at, phys)
        } else {
            self.media.read(at, phys)
        }
    }

    /// Issues a media operation, applying the injected stall/retry/poison
    /// escalation. Returns when the (possibly reissued) operation
    /// finished, and how many reissues it took.
    fn faulted_media_op(&mut self, at: Ps, phys: Addr, write: bool) -> (Ps, u32) {
        let mut done = self.media_attempt(at, phys, write);
        if self.faults.stall_ppm == 0 || self.fault_rng.is_none() {
            return (done, 0);
        }
        let line = phys.block_index(self.cfg.media.line_bytes);
        if self.poisoned.contains(&line) {
            // Already escalated: served best-effort, no further retries.
            return (done, 0);
        }
        let mut retries = 0u32;
        while self.draw_stall() {
            self.media_stalls += 1;
            // The op hung; the DDR-T window expires before we act.
            let resume = done + self.faults.stall;
            if retries >= self.faults.max_retries {
                // Retry budget exhausted: poison the line and serve
                // best-effort instead of retrying forever.
                self.poisoned.insert(line);
                done = resume;
                break;
            }
            retries += 1;
            self.media_retries += 1;
            done = self.media_attempt(resume, phys, write);
        }
        (done, retries)
    }

    /// Services a line read whose command arrives at `now`.
    ///
    /// The returned time includes protocol-engine occupancy, media access
    /// at the wear-levelled physical address, and the DDR-T "read ready"
    /// handshake back to the memory controller.
    pub fn read(&mut self, now: Ps, addr: Addr) -> XpCompletion {
        let (_, ingress_done) = self.engine.book(now, self.cfg.ctrl_overhead);
        let phys = self.translate(addr);
        let (data_at, retries) = self.faulted_media_op(ingress_done, phys, false);
        XpCompletion {
            accepted_at: ingress_done,
            media_done: data_at,
            ready_at: data_at + self.cfg.ddrt_handshake,
            retries,
        }
    }

    /// Services a line write whose command+data arrive at `now`.
    ///
    /// The write is acknowledged once buffered in the persistent write
    /// buffer. Start-Gap rotations triggered by the write are performed
    /// transparently (one media read + one media write), and their cost is
    /// attributed to the media calendars — they never occupy the memory
    /// channel, exactly as in the paper's logic-layer design. Injected
    /// stalls apply to the acknowledged write, not the background copies.
    pub fn write(&mut self, now: Ps, addr: Addr) -> XpCompletion {
        let (_, ingress_done) = self.engine.book(now, self.cfg.ctrl_overhead);
        let phys = self.translate(addr);
        let logical_line = addr.block_index(self.cfg.media.line_bytes) % self.map.lines();
        let (ack, retries) = self.faulted_media_op(ingress_done, phys, true);
        if let Some(mv) = self.map.record_write(logical_line) {
            let line = self.cfg.media.line_bytes;
            let src = Addr::from_block(mv.from, line);
            let dst = Addr::from_block(mv.to, line);
            let read_done = self.media.read(ack, src);
            self.media.write(read_done, dst);
            self.wear_move_reads += 1;
            self.wear_move_writes += 1;
        }
        XpCompletion {
            accepted_at: ingress_done,
            media_done: ack,
            ready_at: ack + self.cfg.ddrt_handshake,
            retries,
        }
    }

    /// Reads `lines` consecutive media lines starting at `addr` (a page
    /// fetch). Lines pipeline across partitions; returns when the last line
    /// is ready at the pins.
    pub fn read_page(&mut self, now: Ps, addr: Addr, lines: u64) -> XpCompletion {
        let line = self.cfg.media.line_bytes;
        let mut agg: Option<XpCompletion> = None;
        for i in 0..lines.max(1) {
            let c = self.read(now, addr.offset(i * line));
            agg = Some(match agg {
                None => c,
                Some(a) => XpCompletion {
                    accepted_at: a.accepted_at.min(c.accepted_at),
                    media_done: a.media_done.max(c.media_done),
                    ready_at: a.ready_at.max(c.ready_at),
                    retries: a.retries + c.retries,
                },
            });
        }
        agg.expect("at least one line")
    }

    /// Writes `lines` consecutive media lines starting at `addr` (a page
    /// store). Returns when the last line is acknowledged.
    pub fn write_page(&mut self, now: Ps, addr: Addr, lines: u64) -> XpCompletion {
        let line = self.cfg.media.line_bytes;
        let mut agg: Option<XpCompletion> = None;
        for i in 0..lines.max(1) {
            let c = self.write(now, addr.offset(i * line));
            agg = Some(match agg {
                None => c,
                Some(a) => XpCompletion {
                    accepted_at: a.accepted_at.min(c.accepted_at),
                    media_done: a.media_done.max(c.media_done),
                    ready_at: a.ready_at.max(c.ready_at),
                    retries: a.retries + c.retries,
                },
            });
        }
        agg.expect("at least one line")
    }

    /// The *snarf* path (auto-read/write): the controller observes a
    /// MC↔DRAM transfer on the channel and absorbs the data as its own
    /// write, without any additional channel transaction. `observed_at` is
    /// when the snooped burst completes on the channel.
    pub fn snarf_write(&mut self, observed_at: Ps, addr: Addr) -> XpCompletion {
        // Identical to a write, but the caller books no channel time.
        self.write(observed_at, addr)
    }

    /// When all buffered writes will have drained to the media.
    pub fn drained_at(&self) -> Ps {
        self.media.drained_at()
    }

    /// Immutable view of the media (for stats/energy accounting).
    pub fn media(&self) -> &XPointMedia {
        &self.media
    }

    /// Endurance summary from the wear-leveling layer.
    pub fn wear_stats(&self) -> WearStats {
        self.map.wear_stats()
    }

    /// Estimated media lifetime in seconds at the observed write rate
    /// (see [`StartGap::lifetime_secs`]).
    pub fn lifetime_secs(&self, elapsed_secs: f64, endurance_writes: u64) -> Option<f64> {
        self.map.lifetime_secs(elapsed_secs, endurance_writes)
    }

    /// Media operations spent on wear-leveling copies: `(reads, writes)`.
    pub fn wear_move_ops(&self) -> (u64, u64) {
        (self.wear_move_reads, self.wear_move_writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> XpCtrlConfig {
        XpCtrlConfig {
            media: XPointConfig {
                capacity_bytes: 1 << 20,
                partitions: 4,
                write_buffer_lines: 8,
                ..XPointConfig::default()
            },
            psi: 4,
            ..XpCtrlConfig::default()
        }
    }

    #[test]
    fn read_latency_composition() {
        let mut c = XPointController::new(small());
        let done = c.read(Ps::ZERO, Addr::new(0));
        assert_eq!(
            done.ready_at,
            Ps::from_ns(5) + Ps::from_ns(190) + Ps::from_ns(10)
        );
    }

    #[test]
    fn write_ack_is_fast() {
        let mut c = XPointController::new(small());
        let done = c.write(Ps::ZERO, Addr::new(0));
        // Ingress + buffered ack + handshake; no 763 ns in the ack path.
        assert_eq!(done.ready_at, Ps::from_ns(5 + 10));
    }

    #[test]
    fn ingress_serialises_requests() {
        let mut c = XPointController::new(small());
        let a = c.read(Ps::ZERO, Addr::new(0));
        // Different partition, but the protocol engine is shared.
        let b = c.read(Ps::ZERO, Addr::new(256));
        assert_eq!(b.ready_at - a.ready_at, Ps::from_ns(5));
    }

    #[test]
    fn wear_rotation_runs_in_background() {
        let mut c = XPointController::new(small());
        for i in 0..16 {
            c.write(Ps::ZERO, Addr::new(i * 256));
        }
        let (r, w) = c.wear_move_ops();
        assert!(
            r >= 3,
            "psi=4 over 16 writes should rotate >= 3 times, got {r}"
        );
        assert_eq!(r, w);
        assert!(c.wear_stats().gap_moves >= 3);
    }

    #[test]
    fn page_ops_pipeline_across_partitions() {
        let mut c = XPointController::new(small());
        let page = c.read_page(Ps::ZERO, Addr::new(0), 4);
        // 4 lines across 4 partitions: bounded by ingress serialisation,
        // far below 4 sequential media reads.
        assert!(page.ready_at < Ps::from_ns(4 * 190));
        let single = XPointController::new(small());
        drop(single);
    }

    #[test]
    fn snarf_write_equals_write_timing() {
        let mut a = XPointController::new(small());
        let mut b = XPointController::new(small());
        let wa = a.write(Ps::from_ns(7), Addr::new(512));
        let wb = b.snarf_write(Ps::from_ns(7), Addr::new(512));
        assert_eq!(wa, wb);
    }

    #[test]
    fn completion_stages_are_ordered() {
        let mut c = XPointController::new(small());
        let r = c.read(Ps::ZERO, Addr::new(0));
        assert!(r.accepted_at <= r.media_done && r.media_done <= r.ready_at);
        assert_eq!(r.accepted_at, Ps::from_ns(5));
        assert_eq!(r.media_done, Ps::from_ns(5 + 190));
        let w = c.write(r.ready_at, Addr::new(256));
        assert!(w.accepted_at <= w.media_done && w.media_done <= w.ready_at);
        let p = c.read_page(w.ready_at, Addr::new(0), 4);
        assert!(p.accepted_at <= p.media_done && p.media_done <= p.ready_at);
    }

    #[test]
    fn quiescent_fault_config_is_bit_identical() {
        let mut plain = XPointController::new(small());
        let mut armed = XPointController::new(small());
        armed.inject_faults(XpFaultConfig::NONE, SplitMix64::new(42));
        for i in 0..32 {
            let a = plain.read(Ps::ZERO, Addr::new(i * 256));
            let b = armed.read(Ps::ZERO, Addr::new(i * 256));
            assert_eq!(a, b);
            let a = plain.write(Ps::ZERO, Addr::new(i * 512));
            let b = armed.write(Ps::ZERO, Addr::new(i * 512));
            assert_eq!(a, b);
        }
        assert_eq!(armed.media_stalls(), 0);
        assert_eq!(armed.media_retries(), 0);
        assert_eq!(armed.poisoned_lines(), 0);
    }

    #[test]
    fn stalls_reissue_and_lengthen_the_media_stage() {
        let mut c = XPointController::new(small());
        c.inject_faults(
            XpFaultConfig {
                stall_ppm: 500_000, // every other op, statistically
                stall: Ps::from_ns(100),
                max_retries: 4,
            },
            SplitMix64::new(7),
        );
        let baseline = XPointController::new(small()).read(Ps::ZERO, Addr::new(0));
        let mut saw_retry = false;
        for i in 0..64 {
            let done = c.read(Ps::ZERO, Addr::new((i % 8) * 256));
            assert!(done.accepted_at <= done.media_done && done.media_done <= done.ready_at);
            if done.retries > 0 {
                saw_retry = true;
                assert!(
                    done.ready_at - done.accepted_at > baseline.ready_at - baseline.accepted_at
                );
            }
        }
        assert!(saw_retry, "50% stall rate over 64 reads must retry");
        assert!(c.media_stalls() >= c.media_retries());
        assert!(c.media_retries() > 0);
    }

    #[test]
    fn exhausted_retries_poison_the_line() {
        let mut c = XPointController::new(small());
        c.inject_faults(
            XpFaultConfig {
                stall_ppm: 1_000_000, // always stall
                stall: Ps::from_ns(50),
                max_retries: 2,
            },
            SplitMix64::new(3),
        );
        let done = c.read(Ps::ZERO, Addr::new(0));
        // Always-stall exhausts the budget on the first op.
        assert_eq!(done.retries, 2);
        assert_eq!(c.poisoned_lines(), 1);
        // A poisoned line is served best-effort without further draws.
        let again = c.read(done.ready_at, Addr::new(0));
        assert_eq!(again.retries, 0);
        assert_eq!(c.poisoned_lines(), 1);
    }

    #[test]
    fn read_page_zero_lines_is_noop_safe() {
        let mut c = XPointController::new(small());
        let done = c.read_page(Ps::ZERO, Addr::new(0), 0);
        assert!(done.ready_at > Ps::ZERO); // clamps to one line
    }
}
