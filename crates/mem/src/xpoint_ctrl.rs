//! The XPoint controller.
//!
//! The memory controller cannot talk to XPoint media directly (paper,
//! Section II-C): the media runs at its own clock and wears out under
//! intensive writes. The XPoint controller sits in between — in Ohm-GPU it
//! is integrated *inside* the XPoint stack as a logic layer (Section III-A)
//! — and provides:
//!
//! * request buffering and asynchronous processing (DDR-T handshake);
//! * address translation and wear leveling via [`StartGap`], eliminating
//!   the external DRAM metadata buffer;
//! * the **snarf** capability (hooking command/address/data off the channel)
//!   that powers the auto-read/write function;
//! * the **DDR sequence generator** that lets it drive DRAM read/write
//!   transactions directly during the swap function (Figure 11).
//!
//! Channel serialisation time is *not* modelled here; the caller (memory
//! controller / migration engine) books the channel and hands this
//! controller the instant at which command+data are present at its pins.
//!
//! # Fault model
//!
//! The DDR-T protocol exists precisely because XPoint media latency is
//! nondeterministic (Section II-C): the controller signals readiness
//! instead of the host counting cycles. The fault-injection subsystem
//! exploits that slack — [`XPointController::inject_faults`] arms a
//! deterministic RNG that makes a media operation *stall* with a
//! configured probability. A stalled op times out after
//! [`XpFaultConfig::stall`] and is reissued to the media; after
//! [`XpFaultConfig::max_retries`] reissues the line is *poisoned*
//! (tracked, counted, served best-effort) rather than retried forever —
//! the capped-retry → poison escalation surfaced in `SimReport`.
//!
//! # Wear-out lifecycle
//!
//! Orthogonally to injected (transient) faults, the controller models the
//! media's *permanent* end of life ([`crate::lifecycle`]). When armed via
//! [`XPointController::arm_lifecycle`], every foreground media operation
//! is classified against the wear map: correctable ECC errors are fixed
//! transparently (plus a background scrub write), while uncorrectable
//! errors and endurance exhaustion *retire* the logical line. Retired
//! lines are remapped into a spare region at the top of the physical
//! space; once spares run out the line escalates to the same best-effort
//! path as a poisoned line — dead, served without retries, and excluded
//! from capacity planning. Background Start-Gap copies are exempt from
//! both injection and lifecycle checks, exactly like stall injection.
//! Injected-fault poisons ([`XPointController::poisoned_lines`]) and
//! wear escalations ([`XPointController::dead_lines`]) are tracked
//! separately so fault tallies stay comparable across runs.

use std::collections::{BTreeMap, BTreeSet};

use ohm_sim::{Addr, Calendar, Ps, SplitMix64};

use crate::lifecycle::{
    LifecycleOutcome, LineLifecycle, XpLifecycleConfig, XpLifecycleEvent, XpLifecycleEventKind,
};
use crate::wear::{StartGap, WearStats};
use crate::xpoint::{XPointConfig, XPointMedia};

/// Timing/configuration of the XPoint controller itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XpCtrlConfig {
    /// Per-request protocol-engine occupancy (ingress processing).
    pub ctrl_overhead: Ps,
    /// One-way DDR-T handshake latency (ready/confirm signalling).
    pub ddrt_handshake: Ps,
    /// Start-Gap rotation period, in writes.
    pub psi: u32,
    /// Media configuration.
    pub media: XPointConfig,
}

impl Default for XpCtrlConfig {
    fn default() -> Self {
        XpCtrlConfig {
            ctrl_overhead: Ps::from_ns(5),
            ddrt_handshake: Ps::from_ns(10),
            psi: 128,
            media: XPointConfig::default(),
        }
    }
}

/// Media fault-injection knobs for one XPoint controller.
///
/// All-zero (the default, [`XpFaultConfig::NONE`]) injects nothing and
/// draws nothing from the RNG, so a controller armed with a quiescent
/// config is bit-identical to an unarmed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XpFaultConfig {
    /// Probability, in parts-per-million per media operation, that the
    /// operation stalls past its DDR-T window and must be reissued.
    pub stall_ppm: u32,
    /// The DDR-T timeout waited before reissuing a stalled operation.
    pub stall: Ps,
    /// Reissues allowed before the line is poisoned instead.
    pub max_retries: u32,
}

impl XpFaultConfig {
    /// No injected faults.
    pub const NONE: XpFaultConfig = XpFaultConfig {
        stall_ppm: 0,
        stall: Ps::ZERO,
        max_retries: 0,
    };
}

impl Default for XpFaultConfig {
    fn default() -> Self {
        XpFaultConfig::NONE
    }
}

/// Completion report for a controller operation.
///
/// Besides the final `ready_at`, the completion carries the internal
/// stage boundaries so the observability layer can split controller
/// latency into ingress / media / handshake portions without changing
/// any timing:
///
/// `accepted_at` ≤ `media_done` ≤ `ready_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XpCompletion {
    /// When the protocol engine finished ingress processing and the
    /// request entered the media path.
    pub accepted_at: Ps,
    /// When the media finished its part (read data at the logic layer /
    /// write buffered persistently), before the DDR-T handshake back.
    pub media_done: Ps,
    /// When the operation's result is available at the controller pins
    /// (read data ready / write acknowledged).
    pub ready_at: Ps,
    /// Media reissues this operation needed (0 on the fault-free path).
    /// Page operations report the sum over their lines.
    pub retries: u32,
}

/// The logic-layer XPoint controller: protocol engine, Start-Gap
/// translation, and the media behind it.
///
/// # Example
///
/// ```
/// use ohm_mem::xpoint_ctrl::{XpCtrlConfig, XPointController};
/// use ohm_sim::{Addr, Ps};
///
/// let mut ctrl = XPointController::new(XpCtrlConfig::default());
/// let done = ctrl.read(Ps::ZERO, Addr::new(0));
/// // Overhead + media read + DDR-T ready signal.
/// assert_eq!(done.ready_at, Ps::from_ns(5 + 190 + 10));
/// ```
#[derive(Debug, Clone)]
pub struct XPointController {
    cfg: XpCtrlConfig,
    media: XPointMedia,
    map: StartGap,
    /// Protocol-engine ingress: one request at a time.
    engine: Calendar,
    wear_move_reads: u64,
    wear_move_writes: u64,
    faults: XpFaultConfig,
    fault_rng: Option<SplitMix64>,
    media_stalls: u64,
    media_retries: u64,
    /// Physical lines poisoned by injected-fault retry exhaustion. Kept
    /// separate from wear-retirement escalations ([`Self::dead`]) so
    /// `FaultReport` tallies stay comparable with injection-only runs.
    poisoned: BTreeSet<u64>,
    /// Armed wear-out lifecycle state (`None` = lifecycle-free path).
    lifecycle: Option<LineLifecycle>,
    /// Retired logical lines remapped into the spare region.
    spare_map: BTreeMap<u64, u64>,
    /// Logical lines whose retirement exhausted the spare budget: dead,
    /// served best-effort, excluded from capacity planning.
    dead: BTreeSet<u64>,
    ecc_corrected: u64,
    ecc_uncorrectable: u64,
    retired: u64,
    /// Lifecycle actions awaiting drain by the observability layer.
    events: Vec<XpLifecycleEvent>,
    /// Logical lines newly lost as usable capacity (spare-exhausted wear
    /// escalations, plus injected-fault poisons while the lifecycle is
    /// armed), awaiting drain by the capacity planners above.
    dead_notices: Vec<u64>,
    /// `(when, cumulative dead lines)` at each spare-exhausted escalation —
    /// the effective-capacity curve.
    capacity_log: Vec<(Ps, u64)>,
}

impl XPointController {
    /// Creates an idle controller over fresh media.
    pub fn new(cfg: XpCtrlConfig) -> Self {
        let lines = (cfg.media.capacity_bytes / cfg.media.line_bytes).max(1);
        XPointController {
            media: XPointMedia::new(cfg.media),
            map: StartGap::new(lines, cfg.psi),
            engine: Calendar::new(),
            cfg,
            wear_move_reads: 0,
            wear_move_writes: 0,
            faults: XpFaultConfig::NONE,
            fault_rng: None,
            media_stalls: 0,
            media_retries: 0,
            poisoned: BTreeSet::new(),
            lifecycle: None,
            spare_map: BTreeMap::new(),
            dead: BTreeSet::new(),
            ecc_corrected: 0,
            ecc_uncorrectable: 0,
            retired: 0,
            events: Vec::new(),
            dead_notices: Vec::new(),
            capacity_log: Vec::new(),
        }
    }

    /// Arms media fault injection with a dedicated RNG stream.
    ///
    /// A zero `stall_ppm` keeps the controller exactly on the fault-free
    /// path (no RNG draws), preserving bit-identity with an unarmed run.
    pub fn inject_faults(&mut self, faults: XpFaultConfig, rng: SplitMix64) {
        self.faults = faults;
        self.fault_rng = Some(rng);
    }

    /// Arms the wear-out lifecycle with a dedicated RNG stream (see
    /// [`crate::lifecycle`]). Per-bucket endurance variation is drawn
    /// eagerly here; a run whose wear never reaches the ECC onset draws
    /// nothing per-op and stays bit-identical to an unarmed run.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is disabled (`endurance_writes == 0`) — gate the
    /// call instead of arming a no-op config.
    pub fn arm_lifecycle(&mut self, cfg: XpLifecycleConfig, rng: SplitMix64) {
        self.lifecycle = Some(LineLifecycle::new(cfg, rng, self.map.bucket_count()));
    }

    /// Whether the wear-out lifecycle is armed.
    pub fn lifecycle_armed(&self) -> bool {
        self.lifecycle.is_some()
    }

    /// Media operations that stalled past their DDR-T window.
    pub fn media_stalls(&self) -> u64 {
        self.media_stalls
    }

    /// Media reissues performed after stalls.
    pub fn media_retries(&self) -> u64 {
        self.media_retries
    }

    /// Lines poisoned after exhausting their *injected-fault* retry
    /// budget. Wear-retirement escalations are tracked separately in
    /// [`Self::dead_lines`], so this tally stays comparable with
    /// injection-only reference runs.
    pub fn poisoned_lines(&self) -> u64 {
        self.poisoned.len() as u64
    }

    /// Whether a stall is drawn for the next media attempt.
    fn draw_stall(&mut self) -> bool {
        if self.faults.stall_ppm == 0 {
            return false;
        }
        match self.fault_rng.as_mut() {
            Some(rng) => rng.next_below(1_000_000) < self.faults.stall_ppm as u64,
            None => false,
        }
    }

    /// Controller configuration.
    pub fn config(&self) -> &XpCtrlConfig {
        &self.cfg
    }

    /// The media line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.cfg.media.line_bytes
    }

    fn translate(&self, addr: Addr) -> Addr {
        self.map.translate_addr(addr, self.cfg.media.line_bytes)
    }

    fn media_attempt(&mut self, at: Ps, phys: Addr, write: bool) -> Ps {
        if write {
            self.media.write(at, phys)
        } else {
            self.media.read(at, phys)
        }
    }

    /// Issues a media operation, applying the injected stall/retry/poison
    /// escalation. Returns when the (possibly reissued) operation
    /// finished, and how many reissues it took.
    fn faulted_media_op(&mut self, at: Ps, phys: Addr, write: bool) -> (Ps, u32) {
        let mut done = self.media_attempt(at, phys, write);
        if self.faults.stall_ppm == 0 || self.fault_rng.is_none() {
            return (done, 0);
        }
        let line = phys.block_index(self.cfg.media.line_bytes);
        if self.poisoned.contains(&line) {
            // Already escalated: served best-effort, no further retries.
            return (done, 0);
        }
        let mut retries = 0u32;
        while self.draw_stall() {
            self.media_stalls += 1;
            // The op hung; the DDR-T window expires before we act.
            let resume = done + self.faults.stall;
            if retries >= self.faults.max_retries {
                // Retry budget exhausted: poison the line and serve
                // best-effort instead of retrying forever.
                self.poisoned.insert(line);
                done = resume;
                break;
            }
            retries += 1;
            self.media_retries += 1;
            done = self.media_attempt(resume, phys, write);
        }
        (done, retries)
    }

    /// A faulted media op on a logical line's behalf: like
    /// [`Self::faulted_media_op`], but if the op poisoned its line while
    /// the lifecycle is armed, the logical line is also noted as lost
    /// capacity for the planners above ([`Self::drain_dead_notices`]).
    /// With no lifecycle armed the behavior is exactly the PR-3 poison
    /// path, so injection-only runs stay bit-identical.
    fn faulted_line_op(&mut self, at: Ps, logical: u64, phys: Addr, write: bool) -> (Ps, u32) {
        let poisoned_before = self.poisoned.len();
        let r = self.faulted_media_op(at, phys, write);
        if self.lifecycle.is_some() && self.poisoned.len() > poisoned_before {
            self.dead_notices.push(logical);
        }
        r
    }

    /// Records one write against the Start-Gap map and, when it triggers
    /// a gap rotation, books the transparent copy on the media calendars
    /// (one read + one write that never occupy the memory channel).
    fn book_gap_move(&mut self, at: Ps, logical: u64) {
        if let Some(mv) = self.map.record_write(logical) {
            let line = self.cfg.media.line_bytes;
            let src = Addr::from_block(mv.from, line);
            let dst = Addr::from_block(mv.to, line);
            let read_done = self.media.read(at, src);
            self.media.write(read_done, dst);
            self.wear_move_reads += 1;
            self.wear_move_writes += 1;
        }
    }

    /// The controller-local logical line of `addr`.
    fn logical_line(&self, addr: Addr) -> u64 {
        self.map.logical_of(addr, self.cfg.media.line_bytes)
    }

    /// Physical address of spare slot `k`, placed just past the Start-Gap
    /// region (lines `0..=lines` — the extra one is the gap line).
    fn spare_addr(&self, k: u64) -> Addr {
        Addr::from_block(self.map.lines() + 1 + k, self.cfg.media.line_bytes)
    }

    /// Services a line read whose command arrives at `now`.
    ///
    /// The returned time includes protocol-engine occupancy, media access
    /// at the wear-levelled physical address, and the DDR-T "read ready"
    /// handshake back to the memory controller.
    pub fn read(&mut self, now: Ps, addr: Addr) -> XpCompletion {
        let (_, ingress_done) = self.engine.book(now, self.cfg.ctrl_overhead);
        let logical = self.logical_line(addr);
        if self.dead.contains(&logical) {
            // Dead line, served best-effort: worn-out cells read
            // marginally, so the controller re-reads with a boosted
            // sensing reference before handing data up — every dead-line
            // read pays a second media pass. No fault draws, no
            // lifecycle checks.
            let phys = self.translate(addr);
            let first = self.media_attempt(ingress_done, phys, false);
            let data_at = self.media_attempt(first, phys, false);
            return XpCompletion {
                accepted_at: ingress_done,
                media_done: data_at,
                ready_at: data_at + self.cfg.ddrt_handshake,
                retries: 0,
            };
        }
        if let Some(&k) = self.spare_map.get(&logical) {
            // Remapped into the spare region: fresh cells, no further
            // lifecycle checks and no Start-Gap translation.
            let spare = self.spare_addr(k);
            let (data_at, retries) = self.faulted_line_op(ingress_done, logical, spare, false);
            return XpCompletion {
                accepted_at: ingress_done,
                media_done: data_at,
                ready_at: data_at + self.cfg.ddrt_handshake,
                retries,
            };
        }
        let phys = self.translate(addr);
        let (data_at, retries) = self.faulted_line_op(ingress_done, logical, phys, false);
        self.lifecycle_check(data_at, logical, phys, false);
        XpCompletion {
            accepted_at: ingress_done,
            media_done: data_at,
            ready_at: data_at + self.cfg.ddrt_handshake,
            retries,
        }
    }

    /// Services a line write whose command+data arrive at `now`.
    ///
    /// The write is acknowledged once buffered in the persistent write
    /// buffer. Start-Gap rotations triggered by the write are performed
    /// transparently (one media read + one media write), and their cost is
    /// attributed to the media calendars — they never occupy the memory
    /// channel, exactly as in the paper's logic-layer design. Injected
    /// stalls apply to the acknowledged write, not the background copies;
    /// lifecycle checks likewise apply only to the foreground write.
    pub fn write(&mut self, now: Ps, addr: Addr) -> XpCompletion {
        let (_, ingress_done) = self.engine.book(now, self.cfg.ctrl_overhead);
        let logical = self.logical_line(addr);
        if self.dead.contains(&logical) {
            // Dead line, best-effort write: exhausted cells need extended
            // program-and-verify loops, so the write occupies the media
            // for two passes. No lifecycle draws; the Start-Gap rotation
            // still advances — the leveling hardware rotates on raw write
            // count and knows nothing of ECC retirement upstream.
            let phys = self.translate(addr);
            let first = self.media_attempt(ingress_done, phys, true);
            let ack = self.media_attempt(first, phys, true);
            self.book_gap_move(ack, logical);
            return XpCompletion {
                accepted_at: ingress_done,
                media_done: ack,
                ready_at: ack + self.cfg.ddrt_handshake,
                retries: 0,
            };
        }
        if let Some(&k) = self.spare_map.get(&logical) {
            // Spare cells are fresh: no lifecycle re-checks for a
            // remapped line, but the write still counts toward the
            // rotation cadence (see the dead-line path above).
            let spare = self.spare_addr(k);
            let (ack, retries) = self.faulted_line_op(ingress_done, logical, spare, true);
            self.book_gap_move(ack, logical);
            return XpCompletion {
                accepted_at: ingress_done,
                media_done: ack,
                ready_at: ack + self.cfg.ddrt_handshake,
                retries,
            };
        }
        let phys = self.translate(addr);
        let (ack, retries) = self.faulted_line_op(ingress_done, logical, phys, true);
        self.book_gap_move(ack, logical);
        self.lifecycle_check(ack, logical, phys, true);
        XpCompletion {
            accepted_at: ingress_done,
            media_done: ack,
            ready_at: ack + self.cfg.ddrt_handshake,
            retries,
        }
    }

    /// Classifies a completed foreground media op against the wear map and
    /// applies the outcome: transparent fix + scrub for correctable
    /// errors, retirement for uncorrectable errors and wear-out.
    fn lifecycle_check(&mut self, done: Ps, logical: u64, phys: Addr, is_write: bool) {
        if self.lifecycle.is_none() {
            return;
        }
        let line_bytes = self.cfg.media.line_bytes;
        let bucket = self.map.bucket_of(phys.block_index(line_bytes));
        let writes = self.map.bucket_writes(bucket);
        let Some(lc) = self.lifecycle.as_mut() else {
            return;
        };
        match lc.classify(bucket, writes, is_write) {
            LifecycleOutcome::Healthy => {}
            LifecycleOutcome::Corrected => {
                // Single-symbol fix in flight; scrub the line in the
                // background to refresh the stored codeword.
                self.ecc_corrected += 1;
                let scrubbed = self.media.write(done, phys);
                self.events.push(XpLifecycleEvent {
                    kind: XpLifecycleEventKind::EccCorrect,
                    line: logical,
                    escalated: false,
                    start: done,
                    end: scrubbed,
                });
            }
            LifecycleOutcome::Uncorrectable => {
                self.ecc_uncorrectable += 1;
                self.retire_line(logical, done);
            }
            LifecycleOutcome::WornOut => self.retire_line(logical, done),
        }
    }

    /// Retires a logical line: remaps it into the spare region while
    /// spares remain, otherwise escalates it to the dead (best-effort)
    /// path and logs the capacity loss.
    fn retire_line(&mut self, logical: u64, at: Ps) {
        self.retired += 1;
        let retire_end = at + self.cfg.ctrl_overhead;
        let spares = self
            .lifecycle
            .as_ref()
            .map(|lc| lc.config().spare_lines)
            .unwrap_or(0);
        if (self.spare_map.len() as u64) < spares {
            let k = self.spare_map.len() as u64;
            self.spare_map.insert(logical, k);
            // Rebuild the line's contents into its spare slot.
            let rebuilt = self.media.write(at, self.spare_addr(k));
            self.events.push(XpLifecycleEvent {
                kind: XpLifecycleEventKind::LineRetire,
                line: logical,
                escalated: false,
                start: at,
                end: retire_end,
            });
            self.events.push(XpLifecycleEvent {
                kind: XpLifecycleEventKind::RemapSpare,
                line: logical,
                escalated: false,
                start: at,
                end: rebuilt,
            });
        } else {
            self.dead.insert(logical);
            self.dead_notices.push(logical);
            self.capacity_log.push((at, self.dead.len() as u64));
            self.events.push(XpLifecycleEvent {
                kind: XpLifecycleEventKind::LineRetire,
                line: logical,
                escalated: true,
                start: at,
                end: retire_end,
            });
        }
    }

    /// Reads `lines` consecutive media lines starting at `addr` (a page
    /// fetch). Lines pipeline across partitions; returns when the last line
    /// is ready at the pins.
    pub fn read_page(&mut self, now: Ps, addr: Addr, lines: u64) -> XpCompletion {
        let line = self.cfg.media.line_bytes;
        let mut agg: Option<XpCompletion> = None;
        for i in 0..lines.max(1) {
            let c = self.read(now, addr.offset(i * line));
            agg = Some(match agg {
                None => c,
                Some(a) => XpCompletion {
                    accepted_at: a.accepted_at.min(c.accepted_at),
                    media_done: a.media_done.max(c.media_done),
                    ready_at: a.ready_at.max(c.ready_at),
                    retries: a.retries + c.retries,
                },
            });
        }
        agg.expect("at least one line")
    }

    /// Writes `lines` consecutive media lines starting at `addr` (a page
    /// store). Returns when the last line is acknowledged.
    pub fn write_page(&mut self, now: Ps, addr: Addr, lines: u64) -> XpCompletion {
        let line = self.cfg.media.line_bytes;
        let mut agg: Option<XpCompletion> = None;
        for i in 0..lines.max(1) {
            let c = self.write(now, addr.offset(i * line));
            agg = Some(match agg {
                None => c,
                Some(a) => XpCompletion {
                    accepted_at: a.accepted_at.min(c.accepted_at),
                    media_done: a.media_done.max(c.media_done),
                    ready_at: a.ready_at.max(c.ready_at),
                    retries: a.retries + c.retries,
                },
            });
        }
        agg.expect("at least one line")
    }

    /// The *snarf* path (auto-read/write): the controller observes a
    /// MC↔DRAM transfer on the channel and absorbs the data as its own
    /// write, without any additional channel transaction. `observed_at` is
    /// when the snooped burst completes on the channel.
    pub fn snarf_write(&mut self, observed_at: Ps, addr: Addr) -> XpCompletion {
        // Identical to a write, but the caller books no channel time.
        self.write(observed_at, addr)
    }

    /// When all buffered writes will have drained to the media.
    pub fn drained_at(&self) -> Ps {
        self.media.drained_at()
    }

    /// Immutable view of the media (for stats/energy accounting).
    pub fn media(&self) -> &XPointMedia {
        &self.media
    }

    /// Endurance summary from the wear-leveling layer.
    pub fn wear_stats(&self) -> WearStats {
        self.map.wear_stats()
    }

    /// The wear-leveling map itself. Lifetime projection lives in one
    /// place — call [`StartGap::lifetime_secs`] on this instead of a
    /// controller passthrough.
    pub fn wear_map(&self) -> &StartGap {
        &self.map
    }

    /// Media operations spent on wear-leveling copies: `(reads, writes)`.
    pub fn wear_move_ops(&self) -> (u64, u64) {
        (self.wear_move_reads, self.wear_move_writes)
    }

    /// Correctable ECC errors fixed transparently (each followed by a
    /// background scrub write).
    pub fn ecc_corrected(&self) -> u64 {
        self.ecc_corrected
    }

    /// Uncorrectable ECC errors (each retires its line).
    pub fn ecc_uncorrectable(&self) -> u64 {
        self.ecc_uncorrectable
    }

    /// Logical lines retired so far (remapped *or* escalated).
    pub fn retired_lines(&self) -> u64 {
        self.retired
    }

    /// Spare slots consumed by retirement remaps.
    pub fn spares_used(&self) -> u64 {
        self.spare_map.len() as u64
    }

    /// Spare slots provisioned by the armed lifecycle config (0 unarmed).
    pub fn spares_total(&self) -> u64 {
        self.lifecycle
            .as_ref()
            .map(|lc| lc.config().spare_lines)
            .unwrap_or(0)
    }

    /// Logical lines whose retirement exhausted the spare budget — lost
    /// capacity the planners above must stop targeting.
    pub fn dead_lines(&self) -> u64 {
        self.dead.len() as u64
    }

    /// Fraction of the logical line space still usable (dead lines
    /// excluded; spare-remapped lines still count as usable).
    pub fn usable_fraction(&self) -> f64 {
        1.0 - self.dead.len() as f64 / self.map.lines() as f64
    }

    /// The effective-capacity curve: `(when, cumulative dead lines)` at
    /// each spare-exhausted escalation.
    pub fn capacity_log(&self) -> &[(Ps, u64)] {
        &self.capacity_log
    }

    /// Drains buffered lifecycle events (ECC corrections, retirements,
    /// spare remaps) for the observability layer.
    pub fn drain_lifecycle_events(&mut self) -> Vec<XpLifecycleEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains the logical lines newly lost as usable capacity —
    /// spare-exhausted wear escalations plus injected-fault poisons under
    /// an armed lifecycle — so capacity planners can stop targeting their
    /// pages. Empty (and free) while the lifecycle is unarmed.
    pub fn drain_dead_notices(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.dead_notices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> XpCtrlConfig {
        XpCtrlConfig {
            media: XPointConfig {
                capacity_bytes: 1 << 20,
                partitions: 4,
                write_buffer_lines: 8,
                ..XPointConfig::default()
            },
            psi: 4,
            ..XpCtrlConfig::default()
        }
    }

    #[test]
    fn read_latency_composition() {
        let mut c = XPointController::new(small());
        let done = c.read(Ps::ZERO, Addr::new(0));
        assert_eq!(
            done.ready_at,
            Ps::from_ns(5) + Ps::from_ns(190) + Ps::from_ns(10)
        );
    }

    #[test]
    fn write_ack_is_fast() {
        let mut c = XPointController::new(small());
        let done = c.write(Ps::ZERO, Addr::new(0));
        // Ingress + buffered ack + handshake; no 763 ns in the ack path.
        assert_eq!(done.ready_at, Ps::from_ns(5 + 10));
    }

    #[test]
    fn ingress_serialises_requests() {
        let mut c = XPointController::new(small());
        let a = c.read(Ps::ZERO, Addr::new(0));
        // Different partition, but the protocol engine is shared.
        let b = c.read(Ps::ZERO, Addr::new(256));
        assert_eq!(b.ready_at - a.ready_at, Ps::from_ns(5));
    }

    #[test]
    fn wear_rotation_runs_in_background() {
        let mut c = XPointController::new(small());
        for i in 0..16 {
            c.write(Ps::ZERO, Addr::new(i * 256));
        }
        let (r, w) = c.wear_move_ops();
        assert!(
            r >= 3,
            "psi=4 over 16 writes should rotate >= 3 times, got {r}"
        );
        assert_eq!(r, w);
        assert!(c.wear_stats().gap_moves >= 3);
    }

    #[test]
    fn page_ops_pipeline_across_partitions() {
        let mut c = XPointController::new(small());
        let page = c.read_page(Ps::ZERO, Addr::new(0), 4);
        // 4 lines across 4 partitions: bounded by ingress serialisation,
        // far below 4 sequential media reads.
        assert!(page.ready_at < Ps::from_ns(4 * 190));
        let single = XPointController::new(small());
        drop(single);
    }

    #[test]
    fn snarf_write_equals_write_timing() {
        let mut a = XPointController::new(small());
        let mut b = XPointController::new(small());
        let wa = a.write(Ps::from_ns(7), Addr::new(512));
        let wb = b.snarf_write(Ps::from_ns(7), Addr::new(512));
        assert_eq!(wa, wb);
    }

    #[test]
    fn completion_stages_are_ordered() {
        let mut c = XPointController::new(small());
        let r = c.read(Ps::ZERO, Addr::new(0));
        assert!(r.accepted_at <= r.media_done && r.media_done <= r.ready_at);
        assert_eq!(r.accepted_at, Ps::from_ns(5));
        assert_eq!(r.media_done, Ps::from_ns(5 + 190));
        let w = c.write(r.ready_at, Addr::new(256));
        assert!(w.accepted_at <= w.media_done && w.media_done <= w.ready_at);
        let p = c.read_page(w.ready_at, Addr::new(0), 4);
        assert!(p.accepted_at <= p.media_done && p.media_done <= p.ready_at);
    }

    #[test]
    fn quiescent_fault_config_is_bit_identical() {
        let mut plain = XPointController::new(small());
        let mut armed = XPointController::new(small());
        armed.inject_faults(XpFaultConfig::NONE, SplitMix64::new(42));
        for i in 0..32 {
            let a = plain.read(Ps::ZERO, Addr::new(i * 256));
            let b = armed.read(Ps::ZERO, Addr::new(i * 256));
            assert_eq!(a, b);
            let a = plain.write(Ps::ZERO, Addr::new(i * 512));
            let b = armed.write(Ps::ZERO, Addr::new(i * 512));
            assert_eq!(a, b);
        }
        assert_eq!(armed.media_stalls(), 0);
        assert_eq!(armed.media_retries(), 0);
        assert_eq!(armed.poisoned_lines(), 0);
    }

    #[test]
    fn stalls_reissue_and_lengthen_the_media_stage() {
        let mut c = XPointController::new(small());
        c.inject_faults(
            XpFaultConfig {
                stall_ppm: 500_000, // every other op, statistically
                stall: Ps::from_ns(100),
                max_retries: 4,
            },
            SplitMix64::new(7),
        );
        let baseline = XPointController::new(small()).read(Ps::ZERO, Addr::new(0));
        let mut saw_retry = false;
        for i in 0..64 {
            let done = c.read(Ps::ZERO, Addr::new((i % 8) * 256));
            assert!(done.accepted_at <= done.media_done && done.media_done <= done.ready_at);
            if done.retries > 0 {
                saw_retry = true;
                assert!(
                    done.ready_at - done.accepted_at > baseline.ready_at - baseline.accepted_at
                );
            }
        }
        assert!(saw_retry, "50% stall rate over 64 reads must retry");
        assert!(c.media_stalls() >= c.media_retries());
        assert!(c.media_retries() > 0);
    }

    #[test]
    fn exhausted_retries_poison_the_line() {
        let mut c = XPointController::new(small());
        c.inject_faults(
            XpFaultConfig {
                stall_ppm: 1_000_000, // always stall
                stall: Ps::from_ns(50),
                max_retries: 2,
            },
            SplitMix64::new(3),
        );
        let done = c.read(Ps::ZERO, Addr::new(0));
        // Always-stall exhausts the budget on the first op.
        assert_eq!(done.retries, 2);
        assert_eq!(c.poisoned_lines(), 1);
        // A poisoned line is served best-effort without further draws.
        let again = c.read(done.ready_at, Addr::new(0));
        assert_eq!(again.retries, 0);
        assert_eq!(c.poisoned_lines(), 1);
    }

    #[test]
    fn read_page_zero_lines_is_noop_safe() {
        let mut c = XPointController::new(small());
        let done = c.read_page(Ps::ZERO, Addr::new(0), 0);
        assert!(done.ready_at > Ps::ZERO); // clamps to one line
    }

    fn armed_small(endurance: u64, spares: u64, corr_ppm: u32, unc_ppm: u32) -> XPointController {
        let mut c = XPointController::new(small());
        c.arm_lifecycle(
            XpLifecycleConfig {
                endurance_writes: endurance,
                endurance_jitter_pct: 0,
                ecc_onset: 0.5,
                ecc_correctable_ppm: corr_ppm,
                ecc_uncorrectable_ppm: unc_ppm,
                spare_lines: spares,
            },
            SplitMix64::new(0xBEEF),
        );
        c
    }

    #[test]
    fn lifecycle_below_onset_is_bit_identical() {
        // Huge endurance: wear never reaches the ECC onset, so the armed
        // controller draws nothing and matches the unarmed one exactly.
        let mut plain = XPointController::new(small());
        let mut armed = armed_small(1 << 40, 8, 400_000, 50_000);
        for i in 0..64 {
            let a = plain.read(Ps::ZERO, Addr::new((i % 16) * 256));
            let b = armed.read(Ps::ZERO, Addr::new((i % 16) * 256));
            assert_eq!(a, b);
            let a = plain.write(Ps::ZERO, Addr::new((i % 16) * 256));
            let b = armed.write(Ps::ZERO, Addr::new((i % 16) * 256));
            assert_eq!(a, b);
        }
        assert_eq!(armed.ecc_corrected(), 0);
        assert_eq!(armed.retired_lines(), 0);
        assert_eq!(armed.dead_lines(), 0);
        assert!(armed.drain_lifecycle_events().is_empty());
    }

    #[test]
    fn wear_out_fills_spares_then_escalates() {
        // Endurance 2, no ECC noise: the second write to each line's
        // bucket wears it out. Two spares, three victims.
        let mut c = armed_small(2, 2, 0, 0);
        for line in 0..3u64 {
            c.write(Ps::ZERO, Addr::new(line * 256));
            c.write(Ps::ZERO, Addr::new(line * 256));
        }
        assert_eq!(c.retired_lines(), 3);
        assert_eq!(c.spares_used(), 2);
        assert_eq!(c.spares_total(), 2);
        assert_eq!(c.dead_lines(), 1);
        // Wear escalation does not leak into the injected-fault tally.
        assert_eq!(c.poisoned_lines(), 0);
        assert!(c.usable_fraction() < 1.0);
        assert_eq!(c.capacity_log().len(), 1);
        let events = c.drain_lifecycle_events();
        assert!(events
            .iter()
            .any(|e| e.kind == XpLifecycleEventKind::RemapSpare));
        assert!(events
            .iter()
            .any(|e| e.kind == XpLifecycleEventKind::LineRetire && e.escalated));
        assert!(events
            .iter()
            .any(|e| e.kind == XpLifecycleEventKind::LineRetire && !e.escalated));
        assert!(events.iter().all(|e| e.start <= e.end));
        assert!(c.drain_lifecycle_events().is_empty(), "drain must consume");
        // Retired lines keep being serviced, spares and dead alike.
        let done = c.read(Ps::ZERO, Addr::new(0));
        assert!(done.ready_at > Ps::ZERO);
        let done = c.write(Ps::ZERO, Addr::new(2 * 256));
        assert!(done.ready_at > Ps::ZERO);
        assert_eq!(c.retired_lines(), 3, "remapped/dead lines never re-retire");
    }

    #[test]
    fn worn_media_corrects_ecc_errors_transparently() {
        // Endurance 10: push one bucket to 90% wear, then hammer reads.
        // Correctable-only config: no retirement, counters + events only.
        // Line 100 keeps clear of the gap-move destination buckets (the
        // gap walks down from the top of the physical space).
        let mut c = armed_small(10, 4, 1_000_000, 0);
        let addr = Addr::new(100 * 256);
        for _ in 0..9 {
            c.write(Ps::ZERO, addr);
        }
        assert_eq!(c.retired_lines(), 0);
        for _ in 0..50 {
            c.read(Ps::ZERO, addr);
        }
        assert!(c.ecc_corrected() > 5, "80% ramp: {}", c.ecc_corrected());
        assert_eq!(c.ecc_uncorrectable(), 0);
        assert_eq!(c.retired_lines(), 0);
        let events = c.drain_lifecycle_events();
        assert!(events
            .iter()
            .all(|e| e.kind == XpLifecycleEventKind::EccCorrect));
        assert_eq!(events.len() as u64, c.ecc_corrected());
    }

    #[test]
    fn lifecycle_is_deterministic_per_seed() {
        let run = || {
            let mut c = armed_small(4, 2, 300_000, 100_000);
            for i in 0..200u64 {
                let addr = Addr::new((i % 8) * 256);
                if i % 3 == 0 {
                    c.read(Ps::ZERO, addr);
                } else {
                    c.write(Ps::ZERO, addr);
                }
            }
            (
                c.retired_lines(),
                c.spares_used(),
                c.dead_lines(),
                c.ecc_corrected(),
                c.ecc_uncorrectable(),
                c.drain_lifecycle_events(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.0 > 0, "endurance 4 over 200 ops must retire something");
    }
}
