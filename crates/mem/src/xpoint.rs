//! 3D XPoint media model.
//!
//! The paper configures XPoint from real Optane DC PMM measurements
//! [Izraelevitz et al.]: line reads take 190 ns and line writes 763 ns at
//! the media (Table I, "PRAM read/write"). The media is organised into
//! partitions that service accesses independently; a read buffer and a
//! *persistent write buffer* in front of the media decouple the memory
//! channel's clock from the media's (Section II-C). A write is
//! acknowledged once it lands in the write buffer; the buffered line drains
//! to the media in the background, and reads contend with drains for the
//! partition.

use std::collections::VecDeque;

use ohm_sim::{Addr, Calendar, Counter, FastDiv, Ps};

/// Static configuration of an XPoint module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XPointConfig {
    /// Media line-read latency (Table I: 190 ns).
    pub read_latency: Ps,
    /// Media line-write latency (Table I: 763 ns).
    pub write_latency: Ps,
    /// Independent media partitions.
    pub partitions: usize,
    /// Depth of the read buffer, in lines (outstanding reads).
    pub read_buffer_lines: usize,
    /// Depth of the persistent write buffer, in lines.
    pub write_buffer_lines: usize,
    /// Module capacity in bytes.
    pub capacity_bytes: u64,
    /// Line (access granule) size in bytes. Must be a power of two.
    pub line_bytes: u64,
}

impl Default for XPointConfig {
    fn default() -> Self {
        XPointConfig {
            read_latency: Ps::from_ns(190),
            write_latency: Ps::from_ns(763),
            partitions: 32,
            read_buffer_lines: 64,
            write_buffer_lines: 64,
            capacity_bytes: 32 << 30,
            line_bytes: 256,
        }
    }
}

/// The XPoint storage media with its partition service model and
/// persistent write buffer.
///
/// Reads and buffered writes are serviced on separate per-partition
/// planes: the controller prioritises latency-critical reads, draining
/// the persistent write buffer in the background, so a read never queues
/// behind a pending drain (each plane still serialises its own
/// operations, preserving the 4x/6x read/write bandwidth asymmetry).
///
/// # Example
///
/// ```
/// use ohm_mem::{XPointConfig, XPointMedia};
/// use ohm_sim::{Addr, Ps};
///
/// let mut xp = XPointMedia::new(XPointConfig::default());
/// let data_at = xp.read(Ps::ZERO, Addr::new(0));
/// assert_eq!(data_at, Ps::from_ns(190));
/// // A write is acknowledged immediately (buffered), drains in background.
/// let ack = xp.write(Ps::ZERO, Addr::new(4096));
/// assert_eq!(ack, Ps::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct XPointMedia {
    cfg: XPointConfig,
    read_planes: Vec<Calendar>,
    write_planes: Vec<Calendar>,
    /// Completion times of in-flight buffered writes (oldest first).
    write_buffer: VecDeque<Ps>,
    /// Completion times of in-flight reads (oldest first).
    read_buffer: VecDeque<Ps>,
    read_stalls: Counter,
    reads: Counter,
    writes: Counter,
    write_stalls: Counter,
    media_busy_reads: Ps,
    media_busy_writes: Ps,
    /// Reciprocal of `cfg.partitions` for per-access decode.
    partitions_div: FastDiv,
}

impl XPointMedia {
    /// Creates an idle module.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero partitions, a zero-depth write
    /// buffer, or a non-power-of-two line size.
    pub fn new(cfg: XPointConfig) -> Self {
        assert!(
            cfg.partitions > 0,
            "XPoint must have at least one partition"
        );
        assert!(
            cfg.read_buffer_lines > 0,
            "read buffer must have at least one line"
        );
        assert!(
            cfg.write_buffer_lines > 0,
            "write buffer must have at least one line"
        );
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        XPointMedia {
            read_planes: vec![Calendar::new(); cfg.partitions],
            write_planes: vec![Calendar::new(); cfg.partitions],
            write_buffer: VecDeque::with_capacity(cfg.write_buffer_lines),
            read_buffer: VecDeque::with_capacity(cfg.read_buffer_lines),
            read_stalls: Counter::new(),
            partitions_div: FastDiv::new(cfg.partitions as u64),
            cfg,
            reads: Counter::new(),
            writes: Counter::new(),
            write_stalls: Counter::new(),
            media_busy_reads: Ps::ZERO,
            media_busy_writes: Ps::ZERO,
        }
    }

    /// The module configuration.
    pub fn config(&self) -> &XPointConfig {
        &self.cfg
    }

    fn partition_of(&self, addr: Addr) -> usize {
        self.partitions_div
            .rem(addr.block_index(self.cfg.line_bytes)) as usize
    }

    fn reclaim_buffer(&mut self, now: Ps) {
        while let Some(&front) = self.write_buffer.front() {
            if front <= now {
                self.write_buffer.pop_front();
            } else {
                break;
            }
        }
        while let Some(&front) = self.read_buffer.front() {
            if front <= now {
                self.read_buffer.pop_front();
            } else {
                break;
            }
        }
    }

    /// Reads the line containing `addr`; returns when data is available at
    /// the module pins (excluding channel transfer).
    pub fn read(&mut self, now: Ps, addr: Addr) -> Ps {
        self.reclaim_buffer(now);
        // The read buffer holds each outstanding read until its data
        // leaves for the channel; a full buffer stalls admission.
        let ready = if self.read_buffer.len() >= self.cfg.read_buffer_lines {
            self.read_stalls.incr();
            self.read_buffer
                .pop_front()
                .expect("buffer non-empty")
                .max(now)
        } else {
            now
        };
        let p = self.partition_of(addr);
        let (_, end) = self.read_planes[p].book(ready, self.cfg.read_latency);
        self.read_buffer.push_back(end);
        self.reads.incr();
        self.media_busy_reads += self.cfg.read_latency;
        end
    }

    /// Writes the line containing `addr`; returns the acknowledgement time
    /// (when the line is accepted into the persistent write buffer).
    ///
    /// If the write buffer is full, the acknowledgement stalls until the
    /// oldest buffered write drains.
    pub fn write(&mut self, now: Ps, addr: Addr) -> Ps {
        self.reclaim_buffer(now);
        let ack = if self.write_buffer.len() >= self.cfg.write_buffer_lines {
            self.write_stalls.incr();
            // Stall until the oldest buffered write completes.
            self.write_buffer
                .pop_front()
                .expect("buffer non-empty")
                .max(now)
        } else {
            now
        };
        let p = self.partition_of(addr);
        let (_, drain_done) = self.write_planes[p].book(ack, self.cfg.write_latency);
        self.write_buffer.push_back(drain_done);
        self.writes.incr();
        self.media_busy_writes += self.cfg.write_latency;
        ack
    }

    /// When all currently buffered writes will have drained to the media.
    pub fn drained_at(&self) -> Ps {
        self.write_buffer.back().copied().unwrap_or(Ps::ZERO)
    }

    /// Lines currently held in the persistent write buffer (as of the last
    /// operation's timestamp).
    pub fn buffered_writes(&self) -> usize {
        self.write_buffer.len()
    }

    /// Media line reads performed.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Media line writes performed.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Writes that stalled on a full persistent write buffer.
    pub fn write_stalls(&self) -> u64 {
        self.write_stalls.get()
    }

    /// Reads that stalled on a full read buffer.
    pub fn read_stalls(&self) -> u64 {
        self.read_stalls.get()
    }

    /// Total media time spent on reads (for energy accounting).
    pub fn media_busy_reads(&self) -> Ps {
        self.media_busy_reads
    }

    /// Total media time spent on writes (for energy accounting).
    pub fn media_busy_writes(&self) -> Ps {
        self.media_busy_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> XPointConfig {
        XPointConfig {
            partitions: 2,
            read_buffer_lines: 4,
            write_buffer_lines: 2,
            ..XPointConfig::default()
        }
    }

    #[test]
    fn read_takes_media_latency() {
        let mut xp = XPointMedia::new(XPointConfig::default());
        assert_eq!(xp.read(Ps::ZERO, Addr::new(0)), Ps::from_ns(190));
        assert_eq!(xp.reads(), 1);
    }

    #[test]
    fn reads_to_same_partition_serialise() {
        let cfg = small_cfg();
        let stride = cfg.line_bytes * cfg.partitions as u64;
        let mut xp = XPointMedia::new(cfg);
        let a = xp.read(Ps::ZERO, Addr::new(0));
        let b = xp.read(Ps::ZERO, Addr::new(stride));
        assert_eq!(a, Ps::from_ns(190));
        assert_eq!(b, Ps::from_ns(380));
    }

    #[test]
    fn reads_to_different_partitions_overlap() {
        let cfg = small_cfg();
        let mut xp = XPointMedia::new(cfg);
        let a = xp.read(Ps::ZERO, Addr::new(0));
        let b = xp.read(Ps::ZERO, Addr::new(cfg.line_bytes));
        assert_eq!(a, b);
    }

    #[test]
    fn writes_ack_fast_until_buffer_fills() {
        let cfg = small_cfg(); // depth 2
        let mut xp = XPointMedia::new(cfg);
        let a1 = xp.write(Ps::ZERO, Addr::new(0));
        let a2 = xp.write(Ps::ZERO, Addr::new(cfg.line_bytes));
        assert_eq!(a1, Ps::ZERO);
        assert_eq!(a2, Ps::ZERO);
        // Third write: buffer full, stalls until the oldest drain (763 ns).
        let a3 = xp.write(Ps::ZERO, Addr::new(2 * cfg.line_bytes));
        assert_eq!(a3, Ps::from_ns(763));
        assert_eq!(xp.write_stalls(), 1);
    }

    #[test]
    fn buffer_reclaims_after_drain() {
        let cfg = small_cfg();
        let mut xp = XPointMedia::new(cfg);
        xp.write(Ps::ZERO, Addr::new(0));
        xp.write(Ps::ZERO, Addr::new(cfg.line_bytes));
        assert_eq!(xp.buffered_writes(), 2);
        // Long after both drains complete, a new write acks immediately.
        let ack = xp.write(Ps::from_us(10), Addr::new(0));
        assert_eq!(ack, Ps::from_us(10));
        assert_eq!(xp.buffered_writes(), 1);
    }

    #[test]
    fn reads_bypass_background_drains() {
        // Read priority: a pending write drain does not delay a read to
        // the same partition.
        let cfg = small_cfg();
        let mut xp = XPointMedia::new(cfg);
        xp.write(Ps::ZERO, Addr::new(0)); // drain runs until 763 ns
        let r = xp.read(Ps::ZERO, Addr::new(0));
        assert_eq!(r, Ps::from_ns(190));
    }

    #[test]
    fn full_read_buffer_stalls_admission() {
        let cfg = XPointConfig {
            partitions: 8,
            read_buffer_lines: 2,
            ..XPointConfig::default()
        };
        let mut xp = XPointMedia::new(cfg);
        // Two reads to different partitions fill the buffer.
        let a = xp.read(Ps::ZERO, Addr::new(0));
        let b = xp.read(Ps::ZERO, Addr::new(cfg.line_bytes));
        assert_eq!(a, b, "parallel partitions");
        // The third admission waits for the oldest read to complete.
        let c = xp.read(Ps::ZERO, Addr::new(2 * cfg.line_bytes));
        assert_eq!(c, a + Ps::from_ns(190));
        assert_eq!(xp.read_stalls(), 1);
    }

    #[test]
    fn drained_at_tracks_last_write() {
        let cfg = small_cfg();
        let mut xp = XPointMedia::new(cfg);
        assert_eq!(xp.drained_at(), Ps::ZERO);
        xp.write(Ps::ZERO, Addr::new(0));
        assert_eq!(xp.drained_at(), Ps::from_ns(763));
    }

    #[test]
    fn busy_time_accounting() {
        let mut xp = XPointMedia::new(small_cfg());
        xp.read(Ps::ZERO, Addr::new(0));
        xp.write(Ps::ZERO, Addr::new(0));
        assert_eq!(xp.media_busy_reads(), Ps::from_ns(190));
        assert_eq!(xp.media_busy_writes(), Ps::from_ns(763));
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = XPointMedia::new(XPointConfig {
            partitions: 0,
            ..XPointConfig::default()
        });
    }
}
