//! Sparse, footprint-independent state maps.
//!
//! The simulator models address spaces that can be orders of magnitude
//! larger than the machine it runs on (a 16 GiB simulated footprint must
//! not cost 16 GiB — or even 16 MiB — of simulator heap). Any component
//! whose state is conceptually "one value per page/line/bucket of the
//! footprint" therefore stores it in a [`SparseState`]: a chunked map
//! that allocates fixed-size chunks on first touch and answers reads of
//! untouched regions with the type's default value, analytically.
//!
//! Invariants that keep sparse runs bit-identical to a dense array:
//!
//! * every index in `[0, len)` is readable at any time; untouched indices
//!   read as `T::default()`,
//! * writing the default value to an untouched region is a no-op (no
//!   chunk is materialized), so pure-default passes allocate nothing,
//! * iteration visits touched chunks in ascending index order regardless
//!   of touch order, so report generation is deterministic.
//!
//! Backed by the seedless [`FastMap`], so chunk lookup is
//! two multiplies plus a probe and identical across runs.

use crate::hash::FastMap;

/// log2 of the number of entries per chunk.
const CHUNK_SHIFT: u32 = 6;

/// Entries per allocated chunk (64: small enough that a lone touched
/// index costs little, large enough to amortize map overhead for dense
/// regions).
pub const CHUNK_LEN: usize = 1 << CHUNK_SHIFT;

/// A fixed-capacity array of `len` logical entries that only allocates
/// the chunks actually written.
///
/// Reads of never-written indices return `T::default()` without
/// allocating; writes materialize one [`CHUNK_LEN`]-entry chunk. The
/// heap cost is `O(touched chunks)`, independent of `len`.
///
/// # Example
///
/// ```
/// use ohm_sim::SparseState;
///
/// // One counter per page of a 16 GiB footprint: free until touched.
/// let mut counters: SparseState<u32> = SparseState::new(16 << 30 >> 12);
/// assert_eq!(counters.touched_chunks(), 0);
/// assert_eq!(*counters.get(1_000_000), 0);
///
/// *counters.get_mut(1_000_000) += 1;
/// assert_eq!(*counters.get(1_000_000), 1);
/// assert_eq!(counters.touched_chunks(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SparseState<T> {
    len: u64,
    default: T,
    chunks: FastMap<u64, Box<[T]>>,
}

impl<T: Clone + Default + PartialEq> SparseState<T> {
    /// Creates a sparse array of `len` logical entries, all reading as
    /// `T::default()` until written. Allocates no chunks.
    pub fn new(len: u64) -> Self {
        SparseState {
            len,
            default: T::default(),
            chunks: FastMap::default(),
        }
    }

    /// Number of logical entries (dense length, not touched count).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads entry `idx` (the default value if its chunk was never
    /// materialized).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn get(&self, idx: u64) -> &T {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        match self.chunks.get(&(idx >> CHUNK_SHIFT)) {
            Some(chunk) => &chunk[(idx & (CHUNK_LEN as u64 - 1)) as usize],
            None => &self.default,
        }
    }

    /// Mutable access to entry `idx`, materializing its chunk (filled
    /// with defaults) on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn get_mut(&mut self, idx: u64) -> &mut T {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        let chunk = self
            .chunks
            .entry(idx >> CHUNK_SHIFT)
            .or_insert_with(|| vec![T::default(); CHUNK_LEN].into_boxed_slice());
        &mut chunk[(idx & (CHUNK_LEN as u64 - 1)) as usize]
    }

    /// Writes entry `idx`. Writing the default value to an untouched
    /// chunk is a no-op — the chunk stays unmaterialized — so resetting
    /// sparse regions to their initial state never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn set(&mut self, idx: u64, value: T) {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        if value == self.default && !self.chunks.contains_key(&(idx >> CHUNK_SHIFT)) {
            return;
        }
        *self.get_mut(idx) = value;
    }

    /// Iterates every entry of every materialized chunk as
    /// `(index, &value)`, in ascending index order regardless of the
    /// order chunks were touched. Untouched regions are skipped — their
    /// contribution to any aggregate must be derived analytically from
    /// the default value.
    pub fn iter_touched(&self) -> impl Iterator<Item = (u64, &T)> {
        let mut keys: Vec<u64> = self.chunks.keys().copied().collect();
        keys.sort_unstable();
        let len = self.len;
        keys.into_iter().flat_map(move |k| {
            let chunk = &self.chunks[&k];
            chunk
                .iter()
                .enumerate()
                .map(move |(off, v)| ((k << CHUNK_SHIFT) + off as u64, v))
                .filter(move |(idx, _)| *idx < len)
        })
    }

    /// Number of chunks materialized so far.
    pub fn touched_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Approximate heap footprint of the materialized state in bytes
    /// (chunk payloads plus per-entry map overhead). Used by
    /// bounded-memory tests to assert state scales with touched pages,
    /// not with [`len`](Self::len).
    pub fn heap_bytes(&self) -> usize {
        let per_chunk = CHUNK_LEN * std::mem::size_of::<T>()
            + std::mem::size_of::<u64>()
            + std::mem::size_of::<Box<[T]>>();
        self.chunks.len() * per_chunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_default_without_allocating() {
        let s: SparseState<u32> = SparseState::new(1 << 40);
        assert_eq!(*s.get(0), 0);
        assert_eq!(*s.get((1 << 40) - 1), 0);
        assert_eq!(s.touched_chunks(), 0);
        assert_eq!(s.heap_bytes(), 0);
    }

    #[test]
    fn writing_default_to_untouched_region_is_free() {
        let mut s: SparseState<u64> = SparseState::new(1 << 30);
        for i in 0..1000 {
            s.set(i * 12345, 0);
        }
        assert_eq!(s.touched_chunks(), 0);
    }

    #[test]
    fn writes_round_trip_and_stay_chunk_local() {
        let mut s: SparseState<u32> = SparseState::new(1 << 30);
        *s.get_mut(7) += 3;
        s.set(1 << 29, 99);
        assert_eq!(*s.get(7), 3);
        assert_eq!(*s.get(1 << 29), 99);
        assert_eq!(*s.get(8), 0); // same chunk as 7, still default
        assert_eq!(s.touched_chunks(), 2);
        assert!(s.heap_bytes() > 0);
    }

    #[test]
    fn matches_dense_vector_under_random_ops() {
        use crate::SplitMix64;
        let len = 10_000u64;
        let mut sparse: SparseState<u64> = SparseState::new(len);
        let mut dense = vec![0u64; len as usize];
        let mut rng = SplitMix64::new(0xC0FFEE);
        for _ in 0..50_000 {
            let idx = rng.next_below(len);
            match rng.next_below(3) {
                0 => {
                    let v = rng.next_below(100);
                    sparse.set(idx, v);
                    dense[idx as usize] = v;
                }
                1 => {
                    *sparse.get_mut(idx) += 1;
                    dense[idx as usize] += 1;
                }
                _ => assert_eq!(*sparse.get(idx), dense[idx as usize]),
            }
        }
        for (i, v) in dense.iter().enumerate() {
            assert_eq!(sparse.get(i as u64), v, "index {i}");
        }
    }

    #[test]
    fn iteration_is_sorted_and_clamped_to_len() {
        let mut s: SparseState<u32> = SparseState::new(CHUNK_LEN as u64 + 3);
        s.set(CHUNK_LEN as u64 + 1, 5); // tail chunk first
        s.set(2, 7);
        let seen: Vec<(u64, u32)> = s.iter_touched().map(|(i, v)| (i, *v)).collect();
        // Both chunks fully enumerated, ascending, tail clamped at len.
        assert_eq!(seen.len(), CHUNK_LEN + 3);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(seen.last().unwrap().0, CHUNK_LEN as u64 + 2);
        assert_eq!(seen[2], (2, 7));
    }

    #[test]
    fn iteration_order_independent_of_touch_order() {
        let mut a: SparseState<u8> = SparseState::new(1 << 20);
        let mut b: SparseState<u8> = SparseState::new(1 << 20);
        let idxs = [900_000u64, 5, 70_000, 123, 500_000];
        for &i in &idxs {
            a.set(i, 1);
        }
        for &i in idxs.iter().rev() {
            b.set(i, 1);
        }
        let va: Vec<_> = a.iter_touched().map(|(i, v)| (i, *v)).collect();
        let vb: Vec<_> = b.iter_touched().map(|(i, v)| (i, *v)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn heap_cost_tracks_touch_count_not_len() {
        let mut small: SparseState<u64> = SparseState::new(1 << 10);
        let mut huge: SparseState<u64> = SparseState::new(1 << 40);
        for i in 0..8 {
            small.set(i, 1);
            huge.set(i, 1);
        }
        assert_eq!(small.heap_bytes(), huge.heap_bytes());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let s: SparseState<u32> = SparseState::new(10);
        s.get(10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_set_panics() {
        let mut s: SparseState<u32> = SparseState::new(10);
        s.set(10, 0);
    }
}
