//! Discrete-event simulation kernel for the Ohm-GPU reproduction.
//!
//! This crate contains the domain-independent machinery that every other
//! crate in the workspace builds on:
//!
//! * [`time`] — picosecond-resolution simulated time ([`Ps`]) and clock
//!   domains ([`Freq`]). The paper's clocks (1.2 GHz streaming
//!   multiprocessors, 15 GHz electrical lanes, 30 GHz optical virtual
//!   channels) are all expressible.
//! * [`event`] — a deterministic event queue ([`EventQueue`]) with stable
//!   FIFO ordering among events scheduled for the same instant.
//! * [`shard`] — an epoch-keyed variant of the queue ([`EpochQueue`])
//!   whose tie-break survives deferred pushes, plus a [`SpinBarrier`],
//!   the building blocks of deterministic intra-cell parallelism.
//! * [`resource`] — calendar-based single-server resources ([`Calendar`])
//!   used to model buses, banks, controllers and optical routes, with
//!   per-tag busy-time accounting for bandwidth breakdowns.
//! * [`stats`] — counters, running statistics, histograms and labelled
//!   breakdowns used to produce the paper's figures.
//! * [`rng`] — a small deterministic random number generator
//!   ([`SplitMix64`]) so simulations are exactly reproducible.
//!
//! # Example
//!
//! ```
//! use ohm_sim::{EventQueue, Ps, Calendar};
//!
//! let mut q = EventQueue::new();
//! q.push(Ps::from_ns(5), "late");
//! q.push(Ps::from_ns(1), "early");
//!
//! let mut bus = Calendar::new();
//! let (start, end) = bus.book(Ps::ZERO, Ps::from_ns(2));
//! assert_eq!((start, end), (Ps::ZERO, Ps::from_ns(2)));
//!
//! assert_eq!(q.pop(), Some((Ps::from_ns(1), "early")));
//! assert_eq!(q.pop(), Some((Ps::from_ns(5), "late")));
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod backoff;
pub mod div;
pub mod event;
pub mod hash;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod sparse;
pub mod stats;
pub mod time;

pub use addr::Addr;
pub use backoff::ExponentialBackoff;
pub use div::FastDiv;
pub use event::EventQueue;
pub use hash::{FastBuildHasher, FastHasher, FastMap};
pub use resource::{Calendar, TaggedCalendar};
pub use rng::SplitMix64;
pub use shard::{spins_before_yield, EntryId, EpochQueue, SpinBarrier};
pub use sparse::SparseState;
pub use stats::{Breakdown, Counter, Histogram, RunningStats, TimeSeries, Timeline};
pub use time::{Freq, Ps};

/// Iteration budget for randomized property tests and soak runs.
///
/// Returns `default` unless the `OHM_SOAK_ITERS` environment variable is
/// set to a positive integer, in which case that value wins. CI's
/// scheduled job exports a large value to reach full soak coverage while
/// the default `cargo test` run stays fast.
pub fn soak_iters(default: u64) -> u64 {
    std::env::var("OHM_SOAK_ITERS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}
