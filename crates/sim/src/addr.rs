//! Physical addresses and address arithmetic.
//!
//! A single [`Addr`] vocabulary type is shared by the cache hierarchy, the
//! memory controllers and the device models so that line/page arithmetic is
//! written once. Addresses are byte addresses in a flat physical space.

use std::fmt;

/// A byte address in the simulated physical address space.
///
/// # Example
///
/// ```
/// use ohm_sim::Addr;
/// let a = Addr::new(0x1234);
/// assert_eq!(a.align_down(64), Addr::new(0x1200));
/// assert_eq!(a.block_index(64), 0x48);
/// assert_eq!(a.offset_in(4096), 0x234);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The zero address.
    pub const ZERO: Addr = Addr(0);

    /// Creates an address from a raw byte offset.
    #[inline]
    pub const fn new(a: u64) -> Self {
        Addr(a)
    }

    /// Raw byte offset.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Aligns the address down to a `block`-byte boundary.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `block` is not a power of two.
    #[inline]
    pub fn align_down(self, block: u64) -> Addr {
        debug_assert!(block.is_power_of_two(), "block must be a power of two");
        Addr(self.0 & !(block - 1))
    }

    /// Index of the `block`-byte block containing this address.
    #[inline]
    pub fn block_index(self, block: u64) -> u64 {
        debug_assert!(block.is_power_of_two(), "block must be a power of two");
        // `block` is a power of two by contract, so the quotient is a
        // shift — the compiler cannot prove that for a runtime value.
        self.0 >> block.trailing_zeros()
    }

    /// Byte offset within the containing `block`-byte block.
    #[inline]
    pub fn offset_in(self, block: u64) -> u64 {
        debug_assert!(block.is_power_of_two(), "block must be a power of two");
        self.0 & (block - 1)
    }

    /// The address of the `index`-th `block`-byte block.
    #[inline]
    pub fn from_block(index: u64, block: u64) -> Addr {
        debug_assert!(block.is_power_of_two(), "block must be a power of two");
        Addr(index * block)
    }

    /// Address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(a: u64) -> Self {
        Addr(a)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_and_offset() {
        let a = Addr::new(0xfedc);
        assert_eq!(a.align_down(0x100), Addr::new(0xfe00));
        assert_eq!(a.offset_in(0x100), 0xdc);
        assert_eq!(a.block_index(0x100), 0xfe);
    }

    #[test]
    fn from_block_roundtrip() {
        let a = Addr::from_block(42, 4096);
        assert_eq!(a, Addr::new(42 * 4096));
        assert_eq!(a.block_index(4096), 42);
        assert_eq!(a.offset_in(4096), 0);
    }

    #[test]
    fn conversions() {
        let a: Addr = 77u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 77);
        assert_eq!(a.to_string(), "0x4d");
        assert_eq!(format!("{a:x}"), "4d");
    }

    #[test]
    fn offset_advances() {
        assert_eq!(Addr::new(10).offset(6), Addr::new(16));
    }
}
