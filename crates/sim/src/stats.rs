//! Statistics collection for simulation reports.
//!
//! These are deliberately simple accumulators: the figures in the paper are
//! averages, fractions and breakdowns, so we track exact sums rather than
//! approximate sketches.

use std::fmt;

use crate::time::Ps;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use ohm_sim::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running min/max/mean statistics over `f64` samples.
///
/// # Example
///
/// ```
/// use ohm_sim::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a [`Ps`] duration sample, in nanoseconds.
    #[inline]
    pub fn push_ps(&mut self, t: Ps) {
        self.push(t.as_ns_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            let m = self.mean();
            (self.sum_sq / self.count as f64 - m * m).max(0.0)
        }
    }

    /// Population standard deviation (0 when empty).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

/// A power-of-two bucketed latency histogram.
///
/// Bucket `i` counts samples `x` with `2^i <= x < 2^(i+1)` (bucket 0 also
/// absorbs `x == 0`). Useful for tail-latency inspection in examples and
/// debugging; the paper's figures use means.
///
/// # Example
///
/// ```
/// use ohm_sim::Histogram;
/// let mut h = Histogram::new();
/// h.record(5);
/// h.record(6);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.bucket_count(2), 2); // both fall in [4, 8)
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }

    /// Records a sample.
    #[inline]
    pub fn record(&mut self, x: u64) {
        let idx = if x == 0 {
            0
        } else {
            63 - x.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += x as u128;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of samples in bucket `i` (`[2^i, 2^(i+1))`).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Number of buckets (fixed at 64: one per power of two of `u64`).
    pub const fn buckets() -> usize {
        64
    }

    /// Inclusive lower bound of bucket `i` (bucket 0 also absorbs 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub fn bucket_lower_bound(i: usize) -> u64 {
        assert!(i < 64, "bucket index out of range: {i}");
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Exclusive upper bound of bucket `i` (`u64::MAX` for the last bucket,
    /// whose true bound does not fit).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        assert!(i < 64, "bucket index out of range: {i}");
        if i == 63 {
            u64::MAX
        } else {
            1u64 << (i + 1)
        }
    }

    /// Merges another histogram's samples into this one. Bucket layouts
    /// are identical by construction, so the merge is exact.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Iterates `(bucket_index, lower_bound, count)` over non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, Self::bucket_lower_bound(i), c))
    }

    /// Approximate quantile: the lower bound of the bucket containing the
    /// `q`-quantile sample (`q` in `[0, 1]`). Returns 0 when empty.
    pub fn quantile_lower_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << 63
    }
}

/// A time-bucketed accumulator for "quantity over time" series
/// (bandwidth timelines, migration-rate plots).
///
/// Samples are added at an instant and summed into fixed-width buckets;
/// the series grows as needed.
///
/// # Example
///
/// ```
/// use ohm_sim::{stats::TimeSeries, Ps};
///
/// let mut ts = TimeSeries::new(Ps::from_us(1));
/// ts.record(Ps::from_ns(200), 64.0);
/// ts.record(Ps::from_ns(900), 64.0);
/// ts.record(Ps::from_us(1), 32.0);
/// assert_eq!(ts.buckets(), &[128.0, 32.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket: Ps,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if the bucket width is zero.
    pub fn new(bucket: Ps) -> Self {
        assert!(bucket > Ps::ZERO, "bucket width must be positive");
        TimeSeries {
            bucket,
            values: Vec::new(),
        }
    }

    /// Adds `amount` at instant `t`.
    pub fn record(&mut self, t: Ps, amount: f64) {
        let idx = (t.as_ps() / self.bucket.as_ps()) as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, 0.0);
        }
        self.values[idx] += amount;
    }

    /// The bucket width.
    pub fn bucket_width(&self) -> Ps {
        self.bucket
    }

    /// The bucket sums, oldest first.
    pub fn buckets(&self) -> &[f64] {
        &self.values
    }

    /// Sum across the whole series.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Peak bucket value (0 when empty).
    pub fn peak(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Mean rate per bucket over the observed span (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.total() / self.values.len() as f64
        }
    }
}

/// A windowed busy-time accumulator for "utilization over time" series.
///
/// Unlike [`TimeSeries`], which sums point amounts, a `Timeline` accounts
/// *intervals*: each `[start, end)` busy interval is split across
/// fixed-width windows, so every window ends up with the busy time that
/// actually fell inside it. Dividing by the window width gives a
/// utilization-over-time curve for one resource (a controller pipeline, an
/// optical virtual channel, a DRAM module).
///
/// Intervals recorded on one timeline are expected to come from one
/// single-server resource and therefore not overlap; utilization values
/// are clamped to `[0, 1]` regardless.
///
/// # Example
///
/// ```
/// use ohm_sim::{Ps, Timeline};
///
/// let mut tl = Timeline::new(Ps::from_ns(100));
/// tl.record_busy(Ps::from_ns(50), Ps::from_ns(150)); // spans two windows
/// assert_eq!(tl.busy_in(0), Ps::from_ns(50));
/// assert_eq!(tl.busy_in(1), Ps::from_ns(50));
/// assert!((tl.utilization_in(0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    window: Ps,
    busy: Vec<Ps>,
}

impl Timeline {
    /// Creates a timeline with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if the window width is zero.
    pub fn new(window: Ps) -> Self {
        assert!(window > Ps::ZERO, "window width must be positive");
        Timeline {
            window,
            busy: Vec::new(),
        }
    }

    /// Accounts a busy interval `[start, end)`, splitting it across the
    /// windows it overlaps. Empty or inverted intervals are ignored.
    pub fn record_busy(&mut self, start: Ps, end: Ps) {
        if end <= start {
            return;
        }
        let w = self.window.as_ps();
        let first = (start.as_ps() / w) as usize;
        let last = ((end.as_ps() - 1) / w) as usize;
        if last >= self.busy.len() {
            self.busy.resize(last + 1, Ps::ZERO);
        }
        for (i, slot) in self.busy.iter_mut().enumerate().take(last + 1).skip(first) {
            let ws = Ps::from_ps(i as u64 * w);
            let we = ws + self.window;
            *slot += end.min(we) - start.max(ws);
        }
    }

    /// The window width.
    pub fn window_width(&self) -> Ps {
        self.window
    }

    /// Number of windows observed so far.
    pub fn len(&self) -> usize {
        self.busy.len()
    }

    /// Whether no busy time has been recorded.
    pub fn is_empty(&self) -> bool {
        self.busy.is_empty()
    }

    /// Busy time that fell inside window `i` (zero for unseen windows).
    pub fn busy_in(&self, i: usize) -> Ps {
        self.busy.get(i).copied().unwrap_or(Ps::ZERO)
    }

    /// Busy fraction of window `i`, clamped to `[0, 1]`.
    pub fn utilization_in(&self, i: usize) -> f64 {
        (self.busy_in(i).as_ps() as f64 / self.window.as_ps() as f64).clamp(0.0, 1.0)
    }

    /// The utilization curve, one value per window, each in `[0, 1]`.
    pub fn utilizations(&self) -> Vec<f64> {
        (0..self.busy.len())
            .map(|i| self.utilization_in(i))
            .collect()
    }

    /// Total busy time across all windows.
    pub fn total_busy(&self) -> Ps {
        self.busy.iter().copied().sum()
    }

    /// Peak per-window utilization (0 when empty).
    pub fn peak_utilization(&self) -> f64 {
        (0..self.busy.len())
            .map(|i| self.utilization_in(i))
            .fold(0.0, f64::max)
    }

    /// Merges another timeline into this one.
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ.
    pub fn merge(&mut self, other: &Timeline) {
        assert_eq!(
            self.window, other.window,
            "cannot merge timelines with different window widths"
        );
        if other.busy.len() > self.busy.len() {
            self.busy.resize(other.busy.len(), Ps::ZERO);
        }
        for (slot, &b) in self.busy.iter_mut().zip(other.busy.iter()) {
            *slot += b;
        }
    }
}

/// A labelled breakdown of a quantity into named categories.
///
/// Backed by a fixed label set chosen at construction; used for the
/// execution-time and energy breakdown figures.
///
/// # Example
///
/// ```
/// use ohm_sim::Breakdown;
/// let mut b = Breakdown::new(&["compute", "transfer", "storage"]);
/// b.add("compute", 34.0);
/// b.add("transfer", 45.0);
/// b.add("storage", 21.0);
/// assert!((b.fraction("transfer") - 0.45).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Breakdown {
    labels: Vec<&'static str>,
    values: Vec<f64>,
}

impl Breakdown {
    /// Creates a breakdown over the given labels, all zero.
    pub fn new(labels: &[&'static str]) -> Self {
        Breakdown {
            labels: labels.to_vec(),
            values: vec![0.0; labels.len()],
        }
    }

    /// Adds `amount` to the category `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label` is not one of the construction labels.
    pub fn add(&mut self, label: &str, amount: f64) {
        let i = self.index_of(label);
        self.values[i] += amount;
    }

    /// Value of a category.
    ///
    /// # Panics
    ///
    /// Panics if `label` is not one of the construction labels.
    pub fn get(&self, label: &str) -> f64 {
        self.values[self.index_of(label)]
    }

    /// Sum across all categories.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Fraction of the total in `label` (0 when the total is 0).
    ///
    /// # Panics
    ///
    /// Panics if `label` is not one of the construction labels.
    pub fn fraction(&self, label: &str) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.get(label) / total
        }
    }

    /// Iterates `(label, value)` pairs in construction order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.labels.iter().copied().zip(self.values.iter().copied())
    }

    fn index_of(&self, label: &str) -> usize {
        self.labels
            .iter()
            .position(|&l| l == label)
            .unwrap_or_else(|| panic!("unknown breakdown label: {label}"))
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        for (i, (label, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let pct = if total == 0.0 { 0.0 } else { 100.0 * v / total };
            write!(f, "{label}: {v:.3} ({pct:.1}%)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.add(10);
        c.incr();
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 6.0, 8.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 8.0);
        assert!((s.variance() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_empty_is_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn running_stats_merge() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.push(1.0);
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 2.0);
        a.merge(&RunningStats::new()); // merging empty is a no-op
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn running_stats_push_ps() {
        let mut s = RunningStats::new();
        s.push_ps(Ps::from_ns(10));
        assert_eq!(s.mean(), 10.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_count(0), 2); // 0 and 1
        assert_eq!(h.bucket_count(1), 2); // 2 and 3
        assert_eq!(h.bucket_count(10), 1); // 1024
        assert!((h.mean() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(4);
        }
        h.record(1 << 20);
        assert_eq!(h.quantile_lower_bound(0.5), 4);
        assert_eq!(h.quantile_lower_bound(1.0), 1 << 20);
        assert_eq!(Histogram::new().quantile_lower_bound(0.5), 0);
    }

    #[test]
    fn histogram_bucket_bounds() {
        assert_eq!(Histogram::bucket_lower_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(0), 2);
        assert_eq!(Histogram::bucket_lower_bound(10), 1024);
        assert_eq!(Histogram::bucket_upper_bound(10), 2048);
        assert_eq!(Histogram::bucket_lower_bound(63), 1u64 << 63);
        assert_eq!(Histogram::bucket_upper_bound(63), u64::MAX);
        // Every recorded sample lands inside its bucket's bounds.
        let mut h = Histogram::new();
        for x in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            h.record(x);
        }
        for (i, lo, _) in h.nonzero_buckets() {
            assert!(lo == Histogram::bucket_lower_bound(i));
        }
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut reference = Histogram::new();
        for x in [1u64, 5, 9000] {
            a.record(x);
            reference.record(x);
        }
        for x in [0u64, 5, 1 << 40] {
            b.record(x);
            reference.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), reference.count());
        assert_eq!(a.mean(), reference.mean());
        for i in 0..Histogram::buckets() {
            assert_eq!(a.bucket_count(i), reference.bucket_count(i), "bucket {i}");
        }
    }

    #[test]
    fn timeline_splits_intervals_across_windows() {
        let mut tl = Timeline::new(Ps::from_ns(100));
        tl.record_busy(Ps::from_ns(50), Ps::from_ns(250));
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.busy_in(0), Ps::from_ns(50));
        assert_eq!(tl.busy_in(1), Ps::from_ns(100));
        assert_eq!(tl.busy_in(2), Ps::from_ns(50));
        assert_eq!(tl.total_busy(), Ps::from_ns(200));
        assert!((tl.utilization_in(1) - 1.0).abs() < 1e-12);
        assert_eq!(tl.peak_utilization(), 1.0);
    }

    #[test]
    fn timeline_window_boundaries_are_half_open() {
        let mut tl = Timeline::new(Ps::from_ns(10));
        // Ends exactly on a boundary: nothing spills into the next window.
        tl.record_busy(Ps::ZERO, Ps::from_ns(10));
        assert_eq!(tl.len(), 1);
        // Starts exactly on a boundary.
        tl.record_busy(Ps::from_ns(10), Ps::from_ns(11));
        assert_eq!(tl.busy_in(1), Ps::from_ns(1));
    }

    #[test]
    fn timeline_ignores_empty_and_inverted_intervals() {
        let mut tl = Timeline::new(Ps::from_ns(10));
        tl.record_busy(Ps::from_ns(5), Ps::from_ns(5));
        tl.record_busy(Ps::from_ns(9), Ps::from_ns(2));
        assert!(tl.is_empty());
        assert_eq!(tl.total_busy(), Ps::ZERO);
        assert_eq!(tl.utilization_in(7), 0.0);
        assert_eq!(tl.peak_utilization(), 0.0);
    }

    #[test]
    fn timeline_merge_accumulates() {
        let mut a = Timeline::new(Ps::from_ns(10));
        let mut b = Timeline::new(Ps::from_ns(10));
        a.record_busy(Ps::ZERO, Ps::from_ns(5));
        b.record_busy(Ps::from_ns(12), Ps::from_ns(18));
        a.merge(&b);
        assert_eq!(a.busy_in(0), Ps::from_ns(5));
        assert_eq!(a.busy_in(1), Ps::from_ns(6));
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different window widths")]
    fn timeline_merge_rejects_mismatched_windows() {
        let mut a = Timeline::new(Ps::from_ns(10));
        a.merge(&Timeline::new(Ps::from_ns(20)));
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn timeline_zero_window_rejected() {
        let _ = Timeline::new(Ps::ZERO);
    }

    #[test]
    fn time_series_buckets_and_stats() {
        let mut ts = TimeSeries::new(Ps::from_ns(100));
        ts.record(Ps::ZERO, 1.0);
        ts.record(Ps::from_ns(99), 2.0);
        ts.record(Ps::from_ns(100), 4.0);
        ts.record(Ps::from_ns(350), 8.0);
        assert_eq!(ts.buckets(), &[3.0, 4.0, 0.0, 8.0]);
        assert_eq!(ts.total(), 15.0);
        assert_eq!(ts.peak(), 8.0);
        assert!((ts.mean() - 3.75).abs() < 1e-12);
        assert_eq!(ts.bucket_width(), Ps::from_ns(100));
    }

    #[test]
    fn empty_time_series_is_quiet() {
        let ts = TimeSeries::new(Ps::from_ns(10));
        assert!(ts.buckets().is_empty());
        assert_eq!(ts.total(), 0.0);
        assert_eq!(ts.peak(), 0.0);
        assert_eq!(ts.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_rejected() {
        let _ = TimeSeries::new(Ps::ZERO);
    }

    #[test]
    fn breakdown_fractions() {
        let mut b = Breakdown::new(&["a", "b"]);
        b.add("a", 1.0);
        b.add("b", 3.0);
        assert_eq!(b.total(), 4.0);
        assert!((b.fraction("a") - 0.25).abs() < 1e-12);
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(pairs, vec![("a", 1.0), ("b", 3.0)]);
    }

    #[test]
    #[should_panic(expected = "unknown breakdown label")]
    fn breakdown_unknown_label_panics() {
        let b = Breakdown::new(&["a"]);
        let _ = b.get("nope");
    }

    #[test]
    fn breakdown_empty_fraction_is_zero() {
        let b = Breakdown::new(&["a"]);
        assert_eq!(b.fraction("a"), 0.0);
    }
}
