//! Statistics collection for simulation reports.
//!
//! These are deliberately simple accumulators: the figures in the paper are
//! averages, fractions and breakdowns, so we track exact sums rather than
//! approximate sketches.

use std::fmt;

use crate::time::Ps;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use ohm_sim::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running min/max/mean statistics over `f64` samples.
///
/// # Example
///
/// ```
/// use ohm_sim::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a [`Ps`] duration sample, in nanoseconds.
    #[inline]
    pub fn push_ps(&mut self, t: Ps) {
        self.push(t.as_ns_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            let m = self.mean();
            (self.sum_sq / self.count as f64 - m * m).max(0.0)
        }
    }

    /// Population standard deviation (0 when empty).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

/// A power-of-two bucketed latency histogram.
///
/// Bucket `i` counts samples `x` with `2^i <= x < 2^(i+1)` (bucket 0 also
/// absorbs `x == 0`). Useful for tail-latency inspection in examples and
/// debugging; the paper's figures use means.
///
/// # Example
///
/// ```
/// use ohm_sim::Histogram;
/// let mut h = Histogram::new();
/// h.record(5);
/// h.record(6);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.bucket_count(2), 2); // both fall in [4, 8)
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }

    /// Records a sample.
    #[inline]
    pub fn record(&mut self, x: u64) {
        let idx = if x == 0 {
            0
        } else {
            63 - x.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += x as u128;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of samples in bucket `i` (`[2^i, 2^(i+1))`).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Approximate quantile: the lower bound of the bucket containing the
    /// `q`-quantile sample (`q` in `[0, 1]`). Returns 0 when empty.
    pub fn quantile_lower_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << 63
    }
}

/// A time-bucketed accumulator for "quantity over time" series
/// (bandwidth timelines, migration-rate plots).
///
/// Samples are added at an instant and summed into fixed-width buckets;
/// the series grows as needed.
///
/// # Example
///
/// ```
/// use ohm_sim::{stats::TimeSeries, Ps};
///
/// let mut ts = TimeSeries::new(Ps::from_us(1));
/// ts.record(Ps::from_ns(200), 64.0);
/// ts.record(Ps::from_ns(900), 64.0);
/// ts.record(Ps::from_us(1), 32.0);
/// assert_eq!(ts.buckets(), &[128.0, 32.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket: Ps,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if the bucket width is zero.
    pub fn new(bucket: Ps) -> Self {
        assert!(bucket > Ps::ZERO, "bucket width must be positive");
        TimeSeries {
            bucket,
            values: Vec::new(),
        }
    }

    /// Adds `amount` at instant `t`.
    pub fn record(&mut self, t: Ps, amount: f64) {
        let idx = (t.as_ps() / self.bucket.as_ps()) as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, 0.0);
        }
        self.values[idx] += amount;
    }

    /// The bucket width.
    pub fn bucket_width(&self) -> Ps {
        self.bucket
    }

    /// The bucket sums, oldest first.
    pub fn buckets(&self) -> &[f64] {
        &self.values
    }

    /// Sum across the whole series.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Peak bucket value (0 when empty).
    pub fn peak(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Mean rate per bucket over the observed span (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.total() / self.values.len() as f64
        }
    }
}

/// A labelled breakdown of a quantity into named categories.
///
/// Backed by a fixed label set chosen at construction; used for the
/// execution-time and energy breakdown figures.
///
/// # Example
///
/// ```
/// use ohm_sim::Breakdown;
/// let mut b = Breakdown::new(&["compute", "transfer", "storage"]);
/// b.add("compute", 34.0);
/// b.add("transfer", 45.0);
/// b.add("storage", 21.0);
/// assert!((b.fraction("transfer") - 0.45).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Breakdown {
    labels: Vec<&'static str>,
    values: Vec<f64>,
}

impl Breakdown {
    /// Creates a breakdown over the given labels, all zero.
    pub fn new(labels: &[&'static str]) -> Self {
        Breakdown {
            labels: labels.to_vec(),
            values: vec![0.0; labels.len()],
        }
    }

    /// Adds `amount` to the category `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label` is not one of the construction labels.
    pub fn add(&mut self, label: &str, amount: f64) {
        let i = self.index_of(label);
        self.values[i] += amount;
    }

    /// Value of a category.
    ///
    /// # Panics
    ///
    /// Panics if `label` is not one of the construction labels.
    pub fn get(&self, label: &str) -> f64 {
        self.values[self.index_of(label)]
    }

    /// Sum across all categories.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Fraction of the total in `label` (0 when the total is 0).
    ///
    /// # Panics
    ///
    /// Panics if `label` is not one of the construction labels.
    pub fn fraction(&self, label: &str) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.get(label) / total
        }
    }

    /// Iterates `(label, value)` pairs in construction order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.labels.iter().copied().zip(self.values.iter().copied())
    }

    fn index_of(&self, label: &str) -> usize {
        self.labels
            .iter()
            .position(|&l| l == label)
            .unwrap_or_else(|| panic!("unknown breakdown label: {label}"))
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        for (i, (label, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let pct = if total == 0.0 { 0.0 } else { 100.0 * v / total };
            write!(f, "{label}: {v:.3} ({pct:.1}%)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.add(10);
        c.incr();
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 6.0, 8.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 8.0);
        assert!((s.variance() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_empty_is_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn running_stats_merge() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.push(1.0);
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 2.0);
        a.merge(&RunningStats::new()); // merging empty is a no-op
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn running_stats_push_ps() {
        let mut s = RunningStats::new();
        s.push_ps(Ps::from_ns(10));
        assert_eq!(s.mean(), 10.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_count(0), 2); // 0 and 1
        assert_eq!(h.bucket_count(1), 2); // 2 and 3
        assert_eq!(h.bucket_count(10), 1); // 1024
        assert!((h.mean() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(4);
        }
        h.record(1 << 20);
        assert_eq!(h.quantile_lower_bound(0.5), 4);
        assert_eq!(h.quantile_lower_bound(1.0), 1 << 20);
        assert_eq!(Histogram::new().quantile_lower_bound(0.5), 0);
    }

    #[test]
    fn time_series_buckets_and_stats() {
        let mut ts = TimeSeries::new(Ps::from_ns(100));
        ts.record(Ps::ZERO, 1.0);
        ts.record(Ps::from_ns(99), 2.0);
        ts.record(Ps::from_ns(100), 4.0);
        ts.record(Ps::from_ns(350), 8.0);
        assert_eq!(ts.buckets(), &[3.0, 4.0, 0.0, 8.0]);
        assert_eq!(ts.total(), 15.0);
        assert_eq!(ts.peak(), 8.0);
        assert!((ts.mean() - 3.75).abs() < 1e-12);
        assert_eq!(ts.bucket_width(), Ps::from_ns(100));
    }

    #[test]
    fn empty_time_series_is_quiet() {
        let ts = TimeSeries::new(Ps::from_ns(10));
        assert!(ts.buckets().is_empty());
        assert_eq!(ts.total(), 0.0);
        assert_eq!(ts.peak(), 0.0);
        assert_eq!(ts.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_rejected() {
        let _ = TimeSeries::new(Ps::ZERO);
    }

    #[test]
    fn breakdown_fractions() {
        let mut b = Breakdown::new(&["a", "b"]);
        b.add("a", 1.0);
        b.add("b", 3.0);
        assert_eq!(b.total(), 4.0);
        assert!((b.fraction("a") - 0.25).abs() < 1e-12);
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(pairs, vec![("a", 1.0), ("b", 3.0)]);
    }

    #[test]
    #[should_panic(expected = "unknown breakdown label")]
    fn breakdown_unknown_label_panics() {
        let b = Breakdown::new(&["a"]);
        let _ = b.get("nope");
    }

    #[test]
    fn breakdown_empty_fraction_is_zero() {
        let b = Breakdown::new(&["a"]);
        assert_eq!(b.fraction("a"), 0.0);
    }
}
