//! Primitives for deterministic intra-cell parallelism.
//!
//! Conservative parallel discrete-event simulation needs two things the
//! serial engine does not: an event key that stays meaningful when an
//! event's *push* is deferred past other pushes (so per-shard work can
//! commit at an epoch barrier without perturbing order), and a cheap
//! rendezvous for a handful of worker threads whose batches are
//! microseconds long. [`EpochQueue`] provides the first, [`SpinBarrier`]
//! the second.
//!
//! # Why `(time, entry, slot)` instead of `(time, seq)`
//!
//! [`EventQueue`](crate::EventQueue) breaks timestamp ties with a global
//! push sequence number. That works only if pushes happen in execution
//! order — which is exactly what an epoch scheduler gives up: the pushes
//! caused by entry *i* may be materialised at the epoch barrier, after
//! entries *i+1..j* have already pushed. [`EpochQueue`] instead keys
//! every event by `(time, entry, slot)`, where `entry` identifies the
//! queue pop whose processing pushed the event (0 for seeds pushed
//! before the first pop) and `slot` numbers the pushes within that
//! entry. As long as each entry's pushes are given the slots they would
//! have received in serial execution, the key order is isomorphic to the
//! serial `(time, seq)` order no matter *when* the pushes are issued —
//! seq numbers increase with (entry, slot) lexicographically in a serial
//! run, so comparing (entry, slot) compares serial seq.
//!
//! The one wrinkle is an entry whose final push (a warp resume, in the
//! engine) must sort after deferred pushes whose count is unknown at pop
//! time: [`EpochQueue::push_final`] assigns the reserved last slot so the
//! resume always compares greater than any sibling push at equal time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

use crate::time::Ps;

/// Identifies the queue pop whose processing pushes an event.
///
/// Obtained from [`EpochQueue::current_entry`] immediately after a pop
/// and redeemed later with [`EpochQueue::push_deferred`] /
/// [`EpochQueue::push_deferred_final`] once the deferred work for that
/// entry has been executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryId(u64);

/// Bits of the packed tie-break key reserved for the slot. An entry's
/// pushes are bounded by the seed fan-out and per-pop effects (dozens),
/// far below 2^21; the entry number gets the remaining 43 bits, enough
/// for ~8.8e12 pops.
const SLOT_BITS: u32 = 21;

/// Reserved slot for the final push of an entry (see [`EpochQueue::push_final`]).
const SLOT_FINAL: u32 = (1 << SLOT_BITS) - 1;

/// Packs `(entry, slot)` so lexicographic order becomes one u64 compare.
fn pack_key(entry: u64, slot: u32) -> u64 {
    debug_assert!(entry < 1 << (64 - SLOT_BITS), "entry number overflow");
    debug_assert!(slot <= SLOT_FINAL, "slot overflow");
    (entry << SLOT_BITS) | u64::from(slot)
}

/// An entry in the heap. Ordering is reversed (earliest first); ties are
/// broken by the packed (pushing entry, slot) key, lowest first.
#[derive(Debug)]
struct Entry<E> {
    time: Ps,
    key: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest key pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// A discrete-event queue whose tie-break key survives deferred pushes.
///
/// Used exactly like [`EventQueue`](crate::EventQueue) in serial code —
/// [`push`](EpochQueue::push) inside an event handler, with the caveat
/// that the handler's *last* push (if it must sort after pushes whose
/// count is not yet known) goes through [`push_final`](EpochQueue::push_final).
/// An epoch scheduler additionally captures [`current_entry`](EpochQueue::current_entry)
/// at pop time and issues the entry's remaining pushes later via the
/// `push_deferred*` methods; the resulting pop order is identical to the
/// serial one.
///
/// # Example
///
/// ```
/// use ohm_sim::{EpochQueue, Ps};
///
/// let mut q = EpochQueue::new();
/// q.push(Ps::from_ns(10), 'b');
/// q.push(Ps::from_ns(10), 'c'); // same instant: FIFO after 'b'
/// q.push(Ps::from_ns(1), 'a');
///
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EpochQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: Ps,
    /// 0 before the first pop (seed pushes); otherwise 1 + number of pops.
    cur_entry: u64,
    next_slot: u32,
    #[cfg(debug_assertions)]
    final_pushed: bool,
}

impl<E> Default for EpochQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EpochQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EpochQueue {
            heap: BinaryHeap::new(),
            now: Ps::ZERO,
            cur_entry: 0,
            next_slot: 0,
            #[cfg(debug_assertions)]
            final_pushed: false,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EpochQueue {
            heap: BinaryHeap::with_capacity(capacity),
            now: Ps::ZERO,
            cur_entry: 0,
            next_slot: 0,
            #[cfg(debug_assertions)]
            final_pushed: false,
        }
    }

    /// Schedules `event` at absolute time `time`, attributed to the
    /// current entry with the next ordinal slot.
    ///
    /// Scheduling in the past is clamped to the current time, matching
    /// [`EventQueue::push`](crate::EventQueue::push).
    pub fn push(&mut self, time: Ps, event: E) {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.insert(time, self.cur_entry, slot, event);
    }

    /// Schedules the current entry's *final* push: its slot is the
    /// reserved maximum, so at equal time it sorts after every other
    /// push of the same entry — including deferred ones issued later.
    ///
    /// At most one final push per entry; a second call would create a
    /// duplicate key and break the deterministic total order.
    pub fn push_final(&mut self, time: Ps, event: E) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(!self.final_pushed, "second final push for one entry");
            self.final_pushed = true;
        }
        self.insert(time, self.cur_entry, SLOT_FINAL, event);
    }

    /// The id of the entry currently being processed (the most recent
    /// pop), for use with the `push_deferred*` methods.
    pub fn current_entry(&self) -> EntryId {
        EntryId(self.cur_entry)
    }

    /// Issues a push on behalf of an earlier entry, with an explicit
    /// slot. The caller is responsible for numbering an entry's deferred
    /// slots 0, 1, 2, … in the order serial execution would have pushed
    /// them, and for not colliding with slots handed out by
    /// [`push`](EpochQueue::push) for the same entry.
    pub fn push_deferred(&mut self, entry: EntryId, slot: u32, time: Ps, event: E) {
        debug_assert!(slot != SLOT_FINAL, "deferred slot collides with final");
        self.insert(time, entry.0, slot, event);
    }

    /// Issues an earlier entry's final push (see [`push_final`](EpochQueue::push_final)).
    pub fn push_deferred_final(&mut self, entry: EntryId, time: Ps, event: E) {
        self.insert(time, entry.0, SLOT_FINAL, event);
    }

    fn insert(&mut self, time: Ps, entry: u64, slot: u32, event: E) {
        let time = time.max(self.now);
        self.heap.push(Entry {
            time,
            key: pack_key(entry, slot),
            event,
        });
    }

    /// Removes and returns the earliest event, advancing the queue's
    /// clock and opening a fresh entry for subsequent pushes.
    pub fn pop(&mut self) -> Option<(Ps, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue time went backwards");
        self.now = entry.time;
        self.cur_entry += 1;
        self.next_slot = 0;
        #[cfg(debug_assertions)]
        {
            self.final_pushed = false;
        }
        Some((entry.time, entry.event))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Ps> {
        self.heap.peek().map(|e| e.time)
    }

    /// The time of the most recently popped event (the simulation "now").
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// How many times a waiter spins before starting to yield the CPU.
/// On a single-CPU host spinning can never observe progress (the thread
/// being waited on is not running), so the budget drops to zero and
/// waiters yield immediately.
pub fn spins_before_yield() -> usize {
    static BUDGET: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 4096,
        _ => 0,
    })
}

/// A sense-reversing barrier that spins before yielding.
///
/// Epoch batches are microseconds long, so parking worker threads in a
/// kernel futex on every barrier would dominate the work. Waiters spin
/// on a generation counter with [`std::hint::spin_loop`] and fall back
/// to [`std::thread::yield_now`] once the spin budget is exhausted, so
/// an oversubscribed machine still makes progress.
#[derive(Debug)]
pub struct SpinBarrier {
    participants: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `participants` threads (must be at least 1).
    pub fn new(participants: usize) -> Self {
        assert!(participants >= 1, "barrier needs at least one participant");
        SpinBarrier {
            participants,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all participants have called `wait` for the current
    /// generation. The last arriver releases the rest.
    pub fn wait(&self) {
        let gen = self.generation.load(AtomicOrdering::Acquire);
        if self.arrived.fetch_add(1, AtomicOrdering::AcqRel) + 1 == self.participants {
            // Reset the count before bumping the generation: waiters can
            // only re-enter after observing the bump, so they never see a
            // stale count.
            self.arrived.store(0, AtomicOrdering::Relaxed);
            self.generation.fetch_add(1, AtomicOrdering::Release);
            return;
        }
        let budget = spins_before_yield();
        let mut spins = 0usize;
        while self.generation.load(AtomicOrdering::Acquire) == gen {
            if spins < budget {
                std::hint::spin_loop();
                spins += 1;
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::EventQueue;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EpochQueue::new();
        q.push(Ps::from_ns(3), 3);
        q.push(Ps::from_ns(1), 1);
        q.push(Ps::from_ns(1), 2); // same instant as 1: pushed later, pops later
        assert_eq!(q.pop(), Some((Ps::from_ns(1), 1)));
        assert_eq!(q.pop(), Some((Ps::from_ns(1), 2)));
        assert_eq!(q.pop(), Some((Ps::from_ns(3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q = EpochQueue::new();
        q.push(Ps::from_ns(10), "a");
        assert_eq!(q.pop(), Some((Ps::from_ns(10), "a")));
        q.push(Ps::from_ns(5), "late");
        assert_eq!(q.pop(), Some((Ps::from_ns(10), "late")));
        assert_eq!(q.now(), Ps::from_ns(10));
    }

    #[test]
    fn final_push_sorts_after_deferred_siblings_at_equal_time() {
        let mut q = EpochQueue::new();
        q.push(Ps::from_ns(1), "seed");
        assert_eq!(q.pop().unwrap().1, "seed");
        let entry = q.current_entry();
        // The final push is issued *first*, then deferred siblings land at
        // the same instant — yet the final one still pops last.
        q.push_final(Ps::from_ns(5), "resume");
        q.push_deferred(entry, 0, Ps::from_ns(5), "mig0");
        q.push_deferred(entry, 1, Ps::from_ns(5), "mig1");
        assert_eq!(q.pop().unwrap().1, "mig0");
        assert_eq!(q.pop().unwrap().1, "mig1");
        assert_eq!(q.pop().unwrap().1, "resume");
    }

    /// Drives an `EventQueue` and an `EpochQueue` through the same random
    /// workload, where each popped event pushes a few same- or later-time
    /// children followed by one "final" child (the serial engine's shape:
    /// migrations pushed before the warp resume). The pop sequences must
    /// be identical — the (entry, slot) key is order-isomorphic to seq.
    #[test]
    fn order_isomorphic_to_event_queue_under_serial_use() {
        let mut rng = SplitMix64::new(0x5EED);
        let mut base: EventQueue<u32> = EventQueue::new();
        let mut epoch: EpochQueue<u32> = EpochQueue::new();
        let mut next_tag = 0u32;
        for _ in 0..64 {
            let t = Ps::from_ps(rng.next_u64() % 50);
            base.push(t, next_tag);
            epoch.push(t, next_tag);
            next_tag += 1;
        }
        let mut popped = 0u32;
        loop {
            let a = base.pop();
            let b = epoch.pop();
            assert_eq!(a, b, "queues diverged after {popped} pops");
            let Some((t, _)) = a else { break };
            popped += 1;
            if popped < 4000 {
                // A few ordinary children, then exactly one final child.
                let kids = (rng.next_u64() % 3) as usize;
                for _ in 0..kids {
                    let dt = Ps::from_ps(rng.next_u64() % 20);
                    base.push(t + dt, next_tag);
                    epoch.push(t + dt, next_tag);
                    next_tag += 1;
                }
                let dt = Ps::from_ps(rng.next_u64() % 20);
                base.push(t + dt, next_tag);
                epoch.push_final(t + dt, next_tag);
                next_tag += 1;
            }
        }
    }

    /// Same workload, but the epoch queue defers each entry's pushes and
    /// issues them (out of push order, even) via the deferred API after a
    /// couple more pops — the pop sequence still matches the serial queue.
    #[test]
    fn deferred_pushes_preserve_serial_order() {
        let mut rng = SplitMix64::new(0xD00F);
        let mut base: EventQueue<u32> = EventQueue::new();
        let mut epoch: EpochQueue<u32> = EpochQueue::new();
        let mut next_tag = 0u32;
        for _ in 0..32 {
            let t = Ps::from_ps(rng.next_u64() % 40);
            base.push(t, next_tag);
            epoch.push(t, next_tag);
            next_tag += 1;
        }
        // Window floor: children land at least FLOOR after their parent, so
        // deferring their push past pops within the window is safe.
        const FLOOR: u64 = 60;
        type Pushes = Vec<(u32, Ps, u32)>;
        let mut deferred: Vec<(EntryId, Pushes)> = Vec::new();
        let mut popped = 0u32;
        loop {
            // Flush everything once any un-flushed push could affect the
            // next pop (or a backlog builds up, or the queue ran dry).
            let next = epoch.peek_time();
            let unsafe_to_pop = next.is_none()
                || deferred
                    .iter()
                    .any(|(_, p)| p.iter().any(|&(_, t, _)| Some(t) <= next));
            if deferred.len() > 2 || unsafe_to_pop {
                for (entry, pushes) in deferred.drain(..) {
                    for (slot, t, tag) in pushes {
                        if slot == SLOT_FINAL {
                            epoch.push_deferred_final(entry, t, tag);
                        } else {
                            epoch.push_deferred(entry, slot, t, tag);
                        }
                    }
                }
            }
            let a = base.pop();
            let b = epoch.pop();
            assert_eq!(a, b, "queues diverged after {popped} pops");
            let Some((t, _)) = a else { break };
            popped += 1;
            if popped < 2000 {
                let entry = epoch.current_entry();
                let kids = (rng.next_u64() % 3) as usize;
                let mut pushes = Vec::new();
                for slot in 0..kids {
                    let dt = Ps::from_ps(FLOOR + rng.next_u64() % 20);
                    base.push(t + dt, next_tag);
                    pushes.push((slot as u32, t + dt, next_tag));
                    next_tag += 1;
                }
                let dt = Ps::from_ps(FLOOR + rng.next_u64() % 20);
                base.push(t + dt, next_tag);
                pushes.push((SLOT_FINAL, t + dt, next_tag));
                next_tag += 1;
                deferred.push((entry, pushes));
            }
        }
    }

    #[test]
    fn spin_barrier_synchronizes_rounds() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let n = 4;
        let rounds = 200;
        let barrier = Arc::new(SpinBarrier::new(n));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for round in 0..rounds {
                        counter.fetch_add(1, AtomicOrdering::SeqCst);
                        barrier.wait();
                        // Every participant must have bumped the counter
                        // for this round before anyone proceeds.
                        let seen = counter.load(AtomicOrdering::SeqCst);
                        assert!(seen >= (round + 1) * n as u64);
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(AtomicOrdering::SeqCst), rounds * n as u64);
    }
}
