//! Simulated time and clock domains.
//!
//! All simulated time in the workspace is carried as [`Ps`], an integral
//! number of picoseconds. A picosecond resolves every clock in the paper's
//! Table I: one 30 GHz optical cycle is ~33 ps, one 1.2 GHz SM cycle is
//! ~833 ps. Durations derived from frequencies are rounded to the nearest
//! picosecond; the rounding error is below 0.1% for every clock used here,
//! far below the modelling error of an architectural simulator.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in picoseconds.
///
/// `Ps` is used for both instants and durations; arithmetic is saturating
/// on subtraction so that latency computations of the form `end - start`
/// never wrap when a component reports an out-of-order timestamp.
///
/// # Example
///
/// ```
/// use ohm_sim::Ps;
/// let t = Ps::from_ns(3) + Ps::from_ps(500);
/// assert_eq!(t.as_ps(), 3_500);
/// assert_eq!(t.as_ns_f64(), 3.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ps(u64);

impl Ps {
    /// Zero time: the start of every simulation.
    pub const ZERO: Ps = Ps(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Ps = Ps(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Ps(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Ps(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Ps(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Ps(ms * 1_000_000_000)
    }

    /// Creates a duration from a (possibly fractional) number of
    /// nanoseconds, rounding to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or does not fit in a `u64` of picoseconds.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns >= 0.0 && ns.is_finite(), "invalid duration: {ns} ns");
        Ps((ns * 1_000.0).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in nanoseconds as a float (for reporting).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time in microseconds as a float (for reporting).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time in seconds as a float (for energy = power × time integration).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction; returns [`Ps::ZERO`] instead of wrapping.
    #[inline]
    pub fn saturating_sub(self, rhs: Ps) -> Ps {
        Ps(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition; returns [`Ps::MAX`] instead of wrapping.
    /// Accumulations that may approach the sentinel (backoff schedules
    /// summed over many attempts) use this instead of `+`.
    #[inline]
    pub fn saturating_add(self, rhs: Ps) -> Ps {
        Ps(self.0.saturating_add(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Ps) -> Option<Ps> {
        self.0.checked_add(rhs.0).map(Ps)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, rhs: Ps) -> Ps {
        Ps(self.0.max(rhs.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, rhs: Ps) -> Ps {
        Ps(self.0.min(rhs.0))
    }

    /// Scales a duration by a dimensionless factor, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn scale(self, factor: f64) -> Ps {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "invalid scale factor: {factor}"
        );
        Ps((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

impl Add for Ps {
    type Output = Ps;
    #[inline]
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0 + rhs.0)
    }
}

impl AddAssign for Ps {
    #[inline]
    fn add_assign(&mut self, rhs: Ps) {
        self.0 += rhs.0;
    }
}

impl Sub for Ps {
    type Output = Ps;
    /// Saturating: an out-of-order `end - start` yields zero, not a wrap.
    #[inline]
    fn sub(self, rhs: Ps) -> Ps {
        Ps(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Ps {
    #[inline]
    fn sub_assign(&mut self, rhs: Ps) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Ps {
    type Output = Ps;
    #[inline]
    fn mul(self, rhs: u64) -> Ps {
        Ps(self.0 * rhs)
    }
}

impl Div<u64> for Ps {
    type Output = Ps;
    #[inline]
    fn div(self, rhs: u64) -> Ps {
        Ps(self.0 / rhs)
    }
}

impl Sum for Ps {
    fn sum<I: Iterator<Item = Ps>>(iter: I) -> Ps {
        iter.fold(Ps::ZERO, Add::add)
    }
}

/// A clock domain, defined by its frequency in hertz.
///
/// `Freq` converts between cycle counts and [`Ps`] durations, and computes
/// serialisation delays for links of a given bit width — the workhorse of
/// the electrical- and optical-channel models.
///
/// # Example
///
/// ```
/// use ohm_sim::{Freq, Ps};
/// let optical = Freq::from_ghz(30.0);
/// // One 32-byte burst over a 16-bit virtual channel:
/// let dur = optical.transfer_time(32 * 8, 16);
/// assert_eq!(dur, Ps::from_ps(533)); // 16 cycles of ~33.3 ps
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Freq {
    hz: u64,
}

impl Freq {
    /// Creates a clock from a frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be positive");
        Freq { hz }
    }

    /// Creates a clock from a frequency in megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_hz((mhz * 1e6).round() as u64)
    }

    /// Creates a clock from a frequency in gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self::from_hz((ghz * 1e9).round() as u64)
    }

    /// Frequency in hertz.
    #[inline]
    pub fn hz(self) -> u64 {
        self.hz
    }

    /// Frequency in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.hz as f64 / 1e9
    }

    /// Duration of `cycles` clock cycles, rounded to the nearest picosecond
    /// of the *total* (not per-cycle, so the error does not accumulate).
    #[inline]
    pub fn cycles(self, cycles: u64) -> Ps {
        // ps = cycles * 1e12 / hz, in u128 to avoid overflow. When the
        // numerator fits in 64 bits (cycles below ~18.4M — every burst
        // and pipeline booking in practice) a hardware `div` replaces
        // the much slower 128-bit software division.
        let num = cycles as u128 * 1_000_000_000_000u128 + (self.hz as u128 / 2);
        match u64::try_from(num) {
            Ok(n) => Ps(n / self.hz),
            Err(_) => Ps((num / self.hz as u128) as u64),
        }
    }

    /// Duration of a single clock cycle.
    #[inline]
    pub fn period(self) -> Ps {
        self.cycles(1)
    }

    /// How many whole cycles elapse in `dur` (floor).
    #[inline]
    pub fn cycles_in(self, dur: Ps) -> u64 {
        ((dur.as_ps() as u128 * self.hz as u128) / 1_000_000_000_000u128) as u64
    }

    /// Time to serialise `bits` over a link `width_bits` wide clocked at
    /// this frequency (single data rate), rounded *up* to whole cycles.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero.
    #[inline]
    pub fn transfer_time(self, bits: u64, width_bits: u64) -> Ps {
        assert!(width_bits > 0, "link width must be positive");
        // Link widths are powers of two in every modelled configuration,
        // turning the ceiling division into a shift.
        let cycles = if width_bits.is_power_of_two() {
            (bits + (width_bits - 1)) >> width_bits.trailing_zeros()
        } else {
            bits.div_ceil(width_bits)
        };
        self.cycles(cycles)
    }

    /// Raw bandwidth of a link `width_bits` wide in bits per second.
    #[inline]
    pub fn bandwidth_bps(self, width_bits: u64) -> f64 {
        self.hz as f64 * width_bits as f64
    }

    /// Raw bandwidth of a link `width_bits` wide in gigabytes per second.
    #[inline]
    pub fn bandwidth_gbps(self, width_bits: u64) -> f64 {
        self.bandwidth_bps(width_bits) / 8.0 / 1e9
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hz >= 1_000_000_000 {
            write!(f, "{:.2} GHz", self.hz as f64 / 1e9)
        } else {
            write!(f, "{:.2} MHz", self.hz as f64 / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_constructors_agree() {
        assert_eq!(Ps::from_ns(1), Ps::from_ps(1_000));
        assert_eq!(Ps::from_us(1), Ps::from_ns(1_000));
        assert_eq!(Ps::from_ms(1), Ps::from_us(1_000));
        assert_eq!(Ps::from_ns_f64(2.5), Ps::from_ps(2_500));
    }

    #[test]
    fn ps_sub_saturates() {
        assert_eq!(Ps::from_ns(1) - Ps::from_ns(2), Ps::ZERO);
        assert_eq!(Ps::from_ns(2) - Ps::from_ns(1), Ps::from_ns(1));
    }

    #[test]
    fn ps_display_scales_unit() {
        assert_eq!(Ps::from_ps(12).to_string(), "12 ps");
        assert_eq!(Ps::from_ns(12).to_string(), "12.000 ns");
        assert_eq!(Ps::from_us(12).to_string(), "12.000 us");
        assert_eq!(Ps::from_ms(12).to_string(), "12.000 ms");
    }

    #[test]
    fn ps_scale_rounds() {
        assert_eq!(Ps::from_ps(10).scale(0.25), Ps::from_ps(3));
        assert_eq!(Ps::from_ps(10).scale(1.5), Ps::from_ps(15));
    }

    #[test]
    #[should_panic(expected = "invalid scale factor")]
    fn ps_scale_rejects_negative() {
        let _ = Ps::from_ps(10).scale(-1.0);
    }

    #[test]
    fn freq_period_rounds_to_nearest() {
        // 30 GHz -> 33.33 ps -> 33 ps
        assert_eq!(Freq::from_ghz(30.0).period(), Ps::from_ps(33));
        // 1.2 GHz -> 833.33 ps -> 833 ps
        assert_eq!(Freq::from_ghz(1.2).period(), Ps::from_ps(833));
        // 15 GHz -> 66.67 ps -> 67 ps
        assert_eq!(Freq::from_ghz(15.0).period(), Ps::from_ps(67));
    }

    #[test]
    fn freq_cycles_does_not_accumulate_error() {
        let f = Freq::from_ghz(30.0);
        // 3_000_000 cycles at 30 GHz is exactly 100 us.
        assert_eq!(f.cycles(3_000_000), Ps::from_us(100));
    }

    #[test]
    fn freq_transfer_time_rounds_up_to_cycles() {
        let f = Freq::from_ghz(1.0); // period = 1 ns
        assert_eq!(f.transfer_time(1, 16), Ps::from_ns(1));
        assert_eq!(f.transfer_time(16, 16), Ps::from_ns(1));
        assert_eq!(f.transfer_time(17, 16), Ps::from_ns(2));
    }

    #[test]
    fn freq_cycles_in_floor() {
        let f = Freq::from_ghz(1.0);
        assert_eq!(f.cycles_in(Ps::from_ps(999)), 0);
        assert_eq!(f.cycles_in(Ps::from_ns(1)), 1);
        assert_eq!(f.cycles_in(Ps::from_ps(2_500)), 2);
    }

    #[test]
    fn freq_bandwidth_matches_paper_table1() {
        // Six 32-bit electrical channels at 15 GHz: 6*32*15e9/8 = 360 GB/s.
        let elec = Freq::from_ghz(15.0);
        let total: f64 = 6.0 * elec.bandwidth_gbps(32);
        assert!((total - 360.0).abs() < 1e-6);
        // One 96-bit optical waveguide at 30 GHz matches it.
        let opt = Freq::from_ghz(30.0);
        assert!((opt.bandwidth_gbps(96) - 360.0).abs() < 1e-6);
    }

    #[test]
    fn ps_sum_iterates() {
        let total: Ps = [Ps::from_ns(1), Ps::from_ns(2), Ps::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Ps::from_ns(6));
    }
}
