//! A fast, deterministic hasher for integer-keyed hot-path maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed per map for
//! HashDoS resistance — overkill for simulator-internal maps whose keys
//! are line indices derived from a deterministic workload, and a
//! measurable cost on the per-request path. [`FastHasher`] is a
//! Fibonacci-multiply mixer in the FxHash family: two multiplies per
//! `u64` key, fixed (seedless) and therefore identical across runs,
//! which also keeps any accidental dependence on hash order
//! deterministic instead of per-process.
//!
//! Not DoS-resistant by design — never use it on attacker-controlled
//! keys.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixer used by [`FastHasher`] (the 64-bit golden-ratio
/// constant, as in FxHash/fxhash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A seedless multiply-rotate hasher for small integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        // Byte-slice fallback (string keys etc.): fold 8 bytes at a time
        // through the same mixer.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(SEED);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] — stateless, so every map hashes
/// identically.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`] — drop-in for hot-path maps with
/// trusted integer keys.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_builders() {
        let a = FastBuildHasher::default().hash_one(0xDEAD_BEEFu64);
        let b = FastBuildHasher::default().hash_one(0xDEAD_BEEFu64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a collision-resistance claim, just a smoke check that the
        // mixer actually mixes nearby keys apart.
        let h = FastBuildHasher::default();
        let hashes: Vec<u64> = (0u64..1000).map(|k| h.hash_one(k)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len());
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for k in 0..100 {
            m.insert(k * 128, k as u32);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(50 * 128)), Some(&50));
        assert_eq!(m.remove(&(50 * 128)), Some(50));
        assert_eq!(m.get(&(50 * 128)), None);
    }

    #[test]
    fn byte_fallback_consistent() {
        let h = FastBuildHasher::default();
        assert_eq!(h.hash_one("workload"), h.hash_one("workload"));
        assert_ne!(h.hash_one("a"), h.hash_one("b"));
    }
}
