//! Deterministic event queue.
//!
//! [`EventQueue`] is a priority queue keyed on [`Ps`] timestamps with a
//! monotonically increasing sequence number as tiebreak, so events that are
//! scheduled for the same instant are delivered in the order they were
//! pushed. Determinism matters here: every experiment in the paper is a
//! comparison between platforms, and nondeterministic tie-breaking would add
//! noise to exactly the quantities being compared.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Ps;

/// An entry in the heap. Ordering is reversed (earliest first) and ties are
/// broken by insertion sequence (lowest first).
#[derive(Debug)]
struct Entry<E> {
    time: Ps,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue with stable FIFO ordering at equal timestamps.
///
/// # Example
///
/// ```
/// use ohm_sim::{EventQueue, Ps};
///
/// let mut q = EventQueue::new();
/// q.push(Ps::from_ns(10), 'b');
/// q.push(Ps::from_ns(10), 'c'); // same instant: FIFO after 'b'
/// q.push(Ps::from_ns(1), 'a');
///
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Ps,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Ps::ZERO,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: Ps::ZERO,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// Scheduling in the past is clamped to the current time rather than
    /// rejected: components frequently compute "ready" instants that an
    /// earlier event has already passed.
    pub fn push(&mut self, time: Ps, event: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, advancing the queue's clock.
    pub fn pop(&mut self) -> Option<(Ps, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue time went backwards");
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Ps> {
        self.heap.peek().map(|e| e.time)
    }

    /// The time of the most recently popped event (the simulation "now").
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Ps::from_ns(3), 3);
        q.push(Ps::from_ns(1), 1);
        q.push(Ps::from_ns(2), 2);
        assert_eq!(q.pop(), Some((Ps::from_ns(1), 1)));
        assert_eq!(q.pop(), Some((Ps::from_ns(2), 2)));
        assert_eq!(q.pop(), Some((Ps::from_ns(3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Ps::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Ps::from_ns(7), i)));
        }
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.push(Ps::from_ns(10), "a");
        assert_eq!(q.pop(), Some((Ps::from_ns(10), "a")));
        q.push(Ps::from_ns(5), "late");
        assert_eq!(q.pop(), Some((Ps::from_ns(10), "late")));
        assert_eq!(q.now(), Ps::from_ns(10));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Ps::from_ns(1), 1);
        q.push(Ps::from_ns(5), 5);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Ps::from_ns(3), 3);
        q.push(Ps::from_ns(4), 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 5);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Ps::from_ns(1), ());
        q.push(Ps::from_ns(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_time_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(Ps::from_ns(9), 'x');
        assert_eq!(q.peek_time(), Some(Ps::from_ns(9)));
        assert_eq!(q.len(), 1);
    }
}
