//! Strength-reduced division by a loop-invariant divisor.
//!
//! Address decoding throughout the simulator divides by quantities that
//! are fixed for a run but unknown at compile time — group counts, line
//! counts, bank counts, controller counts — so the compiler must emit a
//! full 64-bit `div` (20–40 cycles) at every decode. [`FastDiv`]
//! precomputes a 64-bit reciprocal once and replaces each division with
//! a widening multiply plus a single conditional fix-up, which is exact
//! for every dividend (see the correctness note on [`FastDiv::divmod`]).

/// A precomputed divisor for repeated exact `u64` division.
///
/// # Example
///
/// ```
/// use ohm_sim::FastDiv;
///
/// let d = FastDiv::new(9);
/// assert_eq!(d.divmod(75), (8, 3));
/// assert_eq!(d.div(75), 8);
/// assert_eq!(d.rem(75), 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FastDiv {
    d: u64,
    /// `floor(2^64 / d)`; unused (0) when `d == 1`.
    magic: u64,
}

impl FastDiv {
    /// Precomputes the reciprocal of `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "division by zero");
        let magic = ((1u128 << 64) / d as u128) as u64;
        FastDiv { d, magic }
    }

    /// The divisor this reciprocal was built for.
    #[inline]
    pub fn divisor(&self) -> u64 {
        self.d
    }

    /// Exact `(n / d, n % d)`.
    ///
    /// Correctness: with `m = floor(2^64 / d)`, the estimate
    /// `q' = floor(n * m / 2^64)` satisfies
    /// `n/d - q' < 1 + n * (2^64 mod d) / (d * 2^64) < 2` for every
    /// `u64` `n` (the second term is below 1 because `2^64 mod d < d`),
    /// so `q'` is at most one below the true quotient and a single
    /// remainder check restores exactness.
    #[inline]
    pub fn divmod(&self, n: u64) -> (u64, u64) {
        if self.d == 1 {
            return (n, 0);
        }
        let mut q = ((n as u128 * self.magic as u128) >> 64) as u64;
        let mut r = n - q * self.d;
        if r >= self.d {
            q += 1;
            r -= self.d;
        }
        debug_assert_eq!((q, r), (n / self.d, n % self.d));
        (q, r)
    }

    /// Exact `n / d`.
    #[inline]
    pub fn div(&self, n: u64) -> u64 {
        self.divmod(n).0
    }

    /// Exact `n % d`.
    #[inline]
    pub fn rem(&self, n: u64) -> u64 {
        self.divmod(n).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hardware_division_exhaustively() {
        let divisors = [
            1,
            2,
            3,
            7,
            9,
            16,
            63,
            64,
            65,
            1000,
            4096,
            73_728,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ];
        let dividends = [
            0,
            1,
            8,
            9,
            10,
            63,
            64,
            65,
            4095,
            4096,
            65_535,
            73_727,
            73_728,
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            u64::MAX / 9,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &d in &divisors {
            let f = FastDiv::new(d);
            assert_eq!(f.divisor(), d);
            for &n in &dividends {
                assert_eq!(f.divmod(n), (n / d, n % d), "n={n} d={d}");
            }
        }
    }

    #[test]
    fn randomized_against_hardware() {
        let mut rng = crate::SplitMix64::new(0xd117);
        for _ in 0..crate::soak_iters(20_000) {
            let d = rng.next_u64().max(1);
            let n = rng.next_u64();
            let f = FastDiv::new(d);
            assert_eq!(f.divmod(n), (n / d, n % d), "n={n} d={d}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_panics() {
        let _ = FastDiv::new(0);
    }
}
