//! Deterministic pseudo-random number generation.
//!
//! Simulations must be exactly reproducible across runs and platforms, so
//! the workspace uses a self-contained [SplitMix64] generator rather than a
//! process-seeded one. SplitMix64 passes BigCrush, is stateless to seed
//! (any 64-bit value works, including 0) and is more than fast enough for
//! workload generation.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// Weyl-sequence increment: SplitMix64 advances its state by this fixed
/// constant per output, which is what makes O(1) stream jumping possible.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output finalizer applied to a raw state value.
#[inline]
const fn mix(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic 64-bit PRNG (SplitMix64).
///
/// # Example
///
/// ```
/// use ohm_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed (including zero) yields a
    /// full-quality stream.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// Skips `draws` outputs in O(1).
    ///
    /// SplitMix64's state is a Weyl sequence (it advances by a fixed
    /// constant per output), so jumping the stream forward is a single
    /// wrapping multiply-add. After `advance(n)` the generator produces
    /// exactly the values a sibling would after `n` calls to
    /// [`next_u64`](Self::next_u64) (or any other single-draw method).
    /// This lets lazily evaluated consumers materialize only the draws
    /// they touch while staying bit-identical to an eager pass.
    #[inline]
    pub fn advance(&mut self, draws: u64) {
        self.state = self.state.wrapping_add(GAMMA.wrapping_mul(draws));
    }

    /// Returns the `n`-th upcoming raw output (0-based) without consuming
    /// anything: `peek_nth(0)` is what the next [`next_u64`](Self::next_u64)
    /// would return. O(1) for any `n`.
    #[inline]
    pub fn peek_nth(&self, n: u64) -> u64 {
        mix(self
            .state
            .wrapping_add(GAMMA.wrapping_mul(n.wrapping_add(1))))
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift method
    /// (unbiased enough for simulation purposes, exact for power-of-two
    /// bounds).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Geometric-ish positive integer with mean approximately `mean`,
    /// via inverse-transform sampling of an exponential, clamped to `>= 1`.
    ///
    /// Used to draw compute-segment lengths between memory instructions.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn next_geometric(&mut self, mean: f64) -> u64 {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        let u = self.next_f64().max(1e-18);
        let x = (-u.ln() * mean).round() as u64;
        x.max(1)
    }

    /// Derives an independent generator for a subcomponent, mixing `stream`
    /// into the seed so sibling components get decorrelated streams.
    pub fn fork(&mut self, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(4);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_roughly_uniform() {
        let mut r = SplitMix64::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn geometric_mean_close() {
        let mut r = SplitMix64::new(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_geometric(33.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 33.0).abs() < 1.5, "mean was {mean}");
    }

    #[test]
    fn geometric_is_at_least_one() {
        let mut r = SplitMix64::new(8);
        for _ in 0..10_000 {
            assert!(r.next_geometric(0.01) >= 1);
        }
    }

    #[test]
    fn advance_matches_discarding() {
        for skip in [0u64, 1, 2, 63, 64, 1000, 4097] {
            let mut eager = SplitMix64::new(11);
            for _ in 0..skip {
                eager.next_u64();
            }
            let mut lazy = SplitMix64::new(11);
            lazy.advance(skip);
            assert_eq!(lazy, eager, "state diverged after skipping {skip}");
            assert_eq!(lazy.next_u64(), eager.next_u64());
        }
    }

    #[test]
    fn peek_nth_matches_future_draws() {
        let base = SplitMix64::new(12);
        let mut live = base.clone();
        for n in 0..100 {
            assert_eq!(base.peek_nth(n), live.next_u64(), "draw {n}");
        }
        // Peeking never perturbs the stream.
        assert_eq!(base, SplitMix64::new(12));
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut root = SplitMix64::new(9);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
