//! Calendar-based resource models.
//!
//! The simulator models contended hardware — buses, optical virtual
//! channels, DRAM banks, controllers — as *single-server calendars*: a
//! resource grants exclusive `[start, end)` intervals. Because the event
//! loop resolves a request's whole timing chain synchronously, a booking
//! may carry a `ready` time far in the future (e.g. a response burst that
//! can only start once the device has the data); such a booking leaves an
//! *idle gap* behind it, and later bookings with earlier ready times are
//! allowed to **backfill** those gaps. Without backfill, one in-flight
//! request per resource would artificially serialise the whole system;
//! with it, the calendar behaves like a FCFS server that stays
//! work-conserving.
//!
//! [`TaggedCalendar`] additionally attributes busy time to small integer
//! tags, which is how the paper's "effective vs. wasted (migration)
//! bandwidth" breakdowns (Figures 8 and 18) are measured.

use crate::time::Ps;

/// Maximum number of idle gaps remembered for backfill. Old gaps beyond
/// this bound are forgotten (a conservative approximation: the resource
/// just stays idle there).
const MAX_GAPS: usize = 64;

/// A single-server resource with FCFS booking and gap backfill.
///
/// # Example
///
/// ```
/// use ohm_sim::{Calendar, Ps};
///
/// let mut bus = Calendar::new();
/// // A response burst booked far in the future leaves a gap...
/// assert_eq!(bus.book(Ps::from_ns(100), Ps::from_ns(10)), (Ps::from_ns(100), Ps::from_ns(110)));
/// // ...which an earlier-ready transfer backfills.
/// assert_eq!(bus.book(Ps::ZERO, Ps::from_ns(10)), (Ps::ZERO, Ps::from_ns(10)));
/// assert_eq!(bus.busy_time(), Ps::from_ns(20));
/// ```
#[derive(Debug, Clone)]
pub struct Calendar {
    /// Free time after the last scheduled interval.
    next_free: Ps,
    /// Idle gaps `[start, end)` before `next_free`, oldest first, stored
    /// as a ring: `gaps_head` indexes the oldest live entry and
    /// `gaps_len` counts live entries. An inline ring makes both the
    /// hot-path append and the oldest-gap eviction O(1) with no heap
    /// traffic (`MAX_GAPS` is a power of two, so indices wrap by mask).
    gaps: [(Ps, Ps); MAX_GAPS],
    gaps_head: u32,
    gaps_len: u32,
    busy: Ps,
    bookings: u64,
}

impl Default for Calendar {
    fn default() -> Self {
        Calendar {
            next_free: Ps::ZERO,
            gaps: [(Ps::ZERO, Ps::ZERO); MAX_GAPS],
            gaps_head: 0,
            gaps_len: 0,
            busy: Ps::ZERO,
            bookings: 0,
        }
    }
}

impl Calendar {
    /// Creates an idle resource, free from time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `i`-th live gap, oldest first.
    #[inline]
    fn gap(&self, i: u32) -> (Ps, Ps) {
        self.gaps[((self.gaps_head + i) as usize) & (MAX_GAPS - 1)]
    }

    /// Overwrites the `i`-th live gap.
    #[inline]
    fn set_gap(&mut self, i: u32, g: (Ps, Ps)) {
        self.gaps[((self.gaps_head + i) as usize) & (MAX_GAPS - 1)] = g;
    }

    /// Books an exclusive interval of length `dur`, starting no earlier
    /// than `ready`. The earliest idle gap that fits is used; otherwise
    /// the booking is appended at the tail (recording any idle gap it
    /// leaves behind it).
    ///
    /// Returns the `(start, end)` of the granted interval.
    pub fn book(&mut self, ready: Ps, dur: Ps) -> (Ps, Ps) {
        self.bookings += 1;
        self.busy += dur;

        // Fast path: every gap ends at or before `next_free`, so a
        // booking ready at the tail (the common case in a synchronous
        // timing chain, which books forward in time) can never backfill
        // — append directly without scanning the gap list.
        if ready >= self.next_free {
            if ready > self.next_free {
                self.push_gap(self.next_free, ready);
            }
            let end = ready + dur;
            self.next_free = end;
            return (ready, end);
        }

        // Gap end times are non-decreasing along the list (tail appends
        // start at the previous `next_free`; splits only shrink a gap in
        // place), so the last gap's end bounds every gap's end. A booking
        // that cannot fit before that bound can never backfill — skip
        // the scan outright. This makes the tight same-calendar booking
        // chains of page operations (swaps book 32 lines back-to-back)
        // O(1) per line instead of a full stale-gap scan.
        let can_backfill = self.gaps_len > 0 && ready + dur <= self.gap(self.gaps_len - 1).1;
        if can_backfill {
            // Backfill the earliest fitting gap, editing the split in
            // place (only the both-sides-remain split grows the list).
            for i in 0..self.gaps_len {
                let (gs, ge) = self.gap(i);
                let start = ready.max(gs);
                let end = start + dur;
                if end <= ge {
                    match (start > gs, end < ge) {
                        (false, false) => self.remove_gap(i),
                        (false, true) => self.set_gap(i, (end, ge)),
                        (true, false) => self.set_gap(i, (gs, start)),
                        (true, true) => {
                            self.set_gap(i, (gs, start));
                            self.split_gap(i, (end, ge));
                        }
                    }
                    return (start, end);
                }
            }
        }

        // Append at the tail.
        let start = ready.max(self.next_free);
        if start > self.next_free {
            self.push_gap(self.next_free, start);
        }
        let end = start + dur;
        self.next_free = end;
        (start, end)
    }

    /// Appends a gap, forgetting the oldest one once the bound is hit.
    #[inline]
    fn push_gap(&mut self, start: Ps, end: Ps) {
        if self.gaps_len as usize == MAX_GAPS {
            self.gaps_head = (self.gaps_head + 1) & (MAX_GAPS as u32 - 1);
            self.gaps_len -= 1;
        }
        let tail = ((self.gaps_head + self.gaps_len) as usize) & (MAX_GAPS - 1);
        self.gaps[tail] = (start, end);
        self.gaps_len += 1;
    }

    /// Removes the `i`-th live gap, preserving order.
    fn remove_gap(&mut self, i: u32) {
        if i == 0 {
            self.gaps_head = (self.gaps_head + 1) & (MAX_GAPS as u32 - 1);
        } else {
            for j in i..self.gaps_len - 1 {
                let next = self.gap(j + 1);
                self.set_gap(j, next);
            }
        }
        self.gaps_len -= 1;
    }

    /// Inserts the right half of a split immediately after gap `i`,
    /// forgetting the oldest gap if the ring is already full (matching
    /// the eviction order of a plain append-then-trim list).
    fn split_gap(&mut self, mut i: u32, right: (Ps, Ps)) {
        if self.gaps_len as usize == MAX_GAPS {
            if i == 0 {
                // The evicted oldest gap *is* the left half of this
                // split: the right half simply replaces it in front.
                self.set_gap(0, right);
                return;
            }
            self.gaps_head = (self.gaps_head + 1) & (MAX_GAPS as u32 - 1);
            self.gaps_len -= 1;
            i -= 1;
        }
        for j in (i + 1..self.gaps_len).rev() {
            let cur = self.gap(j);
            self.set_gap(j + 1, cur);
        }
        self.set_gap(i + 1, right);
        self.gaps_len += 1;
    }

    /// When the resource is next free *at the tail* (ignoring gaps).
    pub fn next_free(&self) -> Ps {
        self.next_free
    }

    /// The instant a booking of unknown length would start at the tail for
    /// a client ready at `ready` — an estimate that ignores backfill.
    pub fn earliest_start(&self, ready: Ps) -> Ps {
        ready.max(self.next_free)
    }

    /// Pushes the tail free time forward to at least `until`, consuming
    /// (not gapping) the interim — models a resource being *held* (e.g. a
    /// controller owning a bank in a stable state). Earlier gaps remain
    /// backfillable.
    pub fn block_until(&mut self, until: Ps) {
        self.next_free = self.next_free.max(until);
    }

    /// Total booked (busy) time.
    pub fn busy_time(&self) -> Ps {
        self.busy
    }

    /// Number of bookings granted.
    pub fn bookings(&self) -> u64 {
        self.bookings
    }

    /// Busy fraction over an observation window ending at `horizon`,
    /// always a finite value in `[0, 1]`.
    ///
    /// Returns 0 for an empty window; bookings extending past `horizon`
    /// (their busy time is counted in full) are clamped to 1 rather than
    /// reporting an over-unity fraction.
    pub fn utilization(&self, horizon: Ps) -> f64 {
        if horizon == Ps::ZERO {
            0.0
        } else {
            (self.busy.as_ps() as f64 / horizon.as_ps() as f64).clamp(0.0, 1.0)
        }
    }
}

/// A [`Calendar`] that attributes busy time to integer tags.
///
/// Tags are small dense indices (e.g. `0 = demand request`, `1 =
/// migration`) chosen by the caller; the per-tag busy times drive
/// bandwidth-breakdown figures.
///
/// # Example
///
/// ```
/// use ohm_sim::{TaggedCalendar, Ps};
///
/// const DEMAND: usize = 0;
/// const MIGRATION: usize = 1;
///
/// let mut ch = TaggedCalendar::new(2);
/// ch.book(Ps::ZERO, Ps::from_ns(6), DEMAND);
/// ch.book(Ps::ZERO, Ps::from_ns(4), MIGRATION);
/// assert_eq!(ch.busy_by_tag(MIGRATION), Ps::from_ns(4));
/// assert!((ch.tag_fraction(MIGRATION) - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TaggedCalendar {
    inner: Calendar,
    by_tag: Vec<Ps>,
}

impl TaggedCalendar {
    /// Creates an idle resource tracking `tags` distinct busy-time classes.
    pub fn new(tags: usize) -> Self {
        TaggedCalendar {
            inner: Calendar::new(),
            by_tag: vec![Ps::ZERO; tags],
        }
    }

    /// Books an exclusive interval, attributing its duration to `tag`.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is out of range.
    pub fn book(&mut self, ready: Ps, dur: Ps, tag: usize) -> (Ps, Ps) {
        self.by_tag[tag] += dur;
        self.inner.book(ready, dur)
    }

    /// When the resource is next free at the tail.
    pub fn next_free(&self) -> Ps {
        self.inner.next_free()
    }

    /// See [`Calendar::earliest_start`].
    pub fn earliest_start(&self, ready: Ps) -> Ps {
        self.inner.earliest_start(ready)
    }

    /// Total booked time across all tags.
    pub fn busy_time(&self) -> Ps {
        self.inner.busy_time()
    }

    /// Booked time attributed to `tag` (zero for out-of-range tags).
    pub fn busy_by_tag(&self, tag: usize) -> Ps {
        self.by_tag.get(tag).copied().unwrap_or(Ps::ZERO)
    }

    /// Fraction of total busy time attributed to `tag` (0 if never busy).
    pub fn tag_fraction(&self, tag: usize) -> f64 {
        let total = self.inner.busy_time().as_ps();
        if total == 0 {
            0.0
        } else {
            self.busy_by_tag(tag).as_ps() as f64 / total as f64
        }
    }

    /// Number of bookings granted.
    pub fn bookings(&self) -> u64 {
        self.inner.bookings()
    }

    /// Busy fraction over a window ending at `horizon`.
    pub fn utilization(&self, horizon: Ps) -> f64 {
        self.inner.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_serialises_overlapping_requests() {
        let mut c = Calendar::new();
        let (s1, e1) = c.book(Ps::ZERO, Ps::from_ns(10));
        let (s2, e2) = c.book(Ps::from_ns(2), Ps::from_ns(5));
        assert_eq!((s1, e1), (Ps::ZERO, Ps::from_ns(10)));
        assert_eq!((s2, e2), (Ps::from_ns(10), Ps::from_ns(15)));
    }

    #[test]
    fn calendar_backfills_gaps() {
        let mut c = Calendar::new();
        // Far-future booking leaves [0, 100 ns) idle.
        c.book(Ps::from_ns(100), Ps::from_ns(10));
        // An earlier-ready booking fills the gap instead of queueing.
        let (s, e) = c.book(Ps::from_ns(5), Ps::from_ns(20));
        assert_eq!((s, e), (Ps::from_ns(5), Ps::from_ns(25)));
        // The gap remainder [25, 100) is still available.
        let (s2, e2) = c.book(Ps::from_ns(30), Ps::from_ns(70));
        assert_eq!((s2, e2), (Ps::from_ns(30), Ps::from_ns(100)));
        // Remaining gaps are [0,5) and [25,30): too small for 10 ns, so
        // the next booking queues at the tail.
        let (s3, _) = c.book(Ps::ZERO, Ps::from_ns(10));
        assert_eq!(s3, Ps::from_ns(110));
        // But a 5 ns booking backfills the leading gap exactly.
        let (s4, e4) = c.book(Ps::ZERO, Ps::from_ns(5));
        assert_eq!((s4, e4), (Ps::ZERO, Ps::from_ns(5)));
    }

    #[test]
    fn calendar_gap_too_small_is_skipped() {
        let mut c = Calendar::new();
        c.book(Ps::from_ns(10), Ps::from_ns(10)); // gap [0, 10)
        let (s, _) = c.book(Ps::ZERO, Ps::from_ns(15)); // does not fit the gap
        assert_eq!(s, Ps::from_ns(20));
        // The small gap is still there for a fitting booking.
        let (s2, e2) = c.book(Ps::ZERO, Ps::from_ns(10));
        assert_eq!((s2, e2), (Ps::ZERO, Ps::from_ns(10)));
    }

    #[test]
    fn calendar_idle_gap_is_not_busy() {
        let mut c = Calendar::new();
        c.book(Ps::ZERO, Ps::from_ns(1));
        c.book(Ps::from_ns(100), Ps::from_ns(1));
        assert_eq!(c.busy_time(), Ps::from_ns(2));
        assert_eq!(c.next_free(), Ps::from_ns(101));
        assert_eq!(c.bookings(), 2);
    }

    #[test]
    fn calendar_block_until_reserves_without_busy() {
        let mut c = Calendar::new();
        c.block_until(Ps::from_ns(50));
        assert_eq!(c.busy_time(), Ps::ZERO);
        let (start, _) = c.book(Ps::ZERO, Ps::from_ns(1));
        assert_eq!(start, Ps::from_ns(50));
    }

    #[test]
    fn calendar_utilization() {
        let mut c = Calendar::new();
        c.book(Ps::ZERO, Ps::from_ns(25));
        assert!((c.utilization(Ps::from_ns(100)) - 0.25).abs() < 1e-12);
        assert_eq!(c.utilization(Ps::ZERO), 0.0);
    }

    #[test]
    fn tagged_calendar_breakdown() {
        let mut c = TaggedCalendar::new(3);
        c.book(Ps::ZERO, Ps::from_ns(3), 0);
        c.book(Ps::ZERO, Ps::from_ns(6), 1);
        c.book(Ps::ZERO, Ps::from_ns(1), 2);
        assert_eq!(c.busy_time(), Ps::from_ns(10));
        assert!((c.tag_fraction(1) - 0.6).abs() < 1e-12);
        assert_eq!(c.busy_by_tag(7), Ps::ZERO);
    }

    #[test]
    fn tagged_calendar_empty_fraction_is_zero() {
        let c = TaggedCalendar::new(2);
        assert_eq!(c.tag_fraction(0), 0.0);
    }

    #[test]
    #[should_panic]
    fn tagged_calendar_rejects_bad_tag_on_book() {
        let mut c = TaggedCalendar::new(1);
        c.book(Ps::ZERO, Ps::from_ns(1), 5);
    }
}
