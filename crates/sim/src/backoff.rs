//! Deterministic exponential backoff schedules.
//!
//! Recovery paths (optical retransmission, DDR-T media retries) space
//! their attempts with exponential backoff so a persistently faulty
//! resource is not hammered at wire speed. The schedule is pure integer
//! arithmetic over [`Ps`] — the same attempt number always produces the
//! same delay, which the workspace's bit-identical-replay guarantee
//! (same seed + same fault plan ⇒ same report) depends on.

use crate::time::Ps;

/// An exponential backoff schedule: `delay(n) = base · 2^(n-1)`, capped.
///
/// Attempt numbers are 1-based; attempt 0 (the initial try) carries no
/// delay. The doubling saturates instead of wrapping, so arbitrarily
/// large attempt numbers are safe and simply return [`ExponentialBackoff::cap`].
///
/// # Example
///
/// ```
/// use ohm_sim::{ExponentialBackoff, Ps};
///
/// let b = ExponentialBackoff {
///     base: Ps::from_ns(2),
///     cap: Ps::from_ns(12),
/// };
/// assert_eq!(b.delay(0), Ps::ZERO);        // initial attempt
/// assert_eq!(b.delay(1), Ps::from_ns(2));  // first retry
/// assert_eq!(b.delay(2), Ps::from_ns(4));
/// assert_eq!(b.delay(3), Ps::from_ns(8));
/// assert_eq!(b.delay(4), Ps::from_ns(12)); // capped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExponentialBackoff {
    /// Delay before the first retry.
    pub base: Ps,
    /// Upper bound on any single delay.
    pub cap: Ps,
}

impl ExponentialBackoff {
    /// A schedule that never waits (all delays are zero).
    pub const NONE: ExponentialBackoff = ExponentialBackoff {
        base: Ps::ZERO,
        cap: Ps::ZERO,
    };

    /// The delay before retry `attempt` (1-based); attempt 0 is free.
    pub fn delay(&self, attempt: u32) -> Ps {
        if attempt == 0 || self.base == Ps::ZERO {
            return Ps::ZERO;
        }
        let shift = (attempt - 1).min(63);
        let ps = self.base.as_ps().saturating_mul(1u64 << shift);
        Ps::from_ps(ps).min(self.cap)
    }

    /// Total delay accumulated over retries `1..=attempts`.
    ///
    /// Each per-attempt delay saturates at [`ExponentialBackoff::cap`],
    /// but the *sum* of many capped delays can still exceed `u64::MAX`
    /// picoseconds, so the accumulation itself saturates too: once the
    /// running total reaches [`Ps::MAX`] it stays there instead of
    /// wrapping (or panicking in debug builds).
    pub fn total_delay(&self, attempts: u32) -> Ps {
        (1..=attempts).fold(Ps::ZERO, |acc, a| acc.saturating_add(self.delay(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_cap() {
        let b = ExponentialBackoff {
            base: Ps::from_ps(100),
            cap: Ps::from_ps(450),
        };
        assert_eq!(b.delay(1), Ps::from_ps(100));
        assert_eq!(b.delay(2), Ps::from_ps(200));
        assert_eq!(b.delay(3), Ps::from_ps(400));
        assert_eq!(b.delay(4), Ps::from_ps(450));
        assert_eq!(b.delay(100), Ps::from_ps(450));
    }

    #[test]
    fn attempt_zero_is_free() {
        let b = ExponentialBackoff {
            base: Ps::from_ns(1),
            cap: Ps::from_ns(8),
        };
        assert_eq!(b.delay(0), Ps::ZERO);
    }

    #[test]
    fn none_schedule_never_waits() {
        assert_eq!(ExponentialBackoff::NONE.delay(1), Ps::ZERO);
        assert_eq!(ExponentialBackoff::NONE.delay(17), Ps::ZERO);
        assert_eq!(ExponentialBackoff::NONE.total_delay(5), Ps::ZERO);
    }

    #[test]
    fn huge_attempts_saturate_instead_of_wrapping() {
        let b = ExponentialBackoff {
            base: Ps::from_ps(u64::MAX / 2),
            cap: Ps::MAX,
        };
        assert_eq!(b.delay(200), Ps::MAX);
    }

    #[test]
    fn total_delay_saturates_near_ps_max() {
        // Each term caps just below Ps::MAX, so two terms would already
        // wrap a u64 accumulator; the fold must pin at Ps::MAX instead.
        let b = ExponentialBackoff {
            base: Ps::from_ps(u64::MAX - 1),
            cap: Ps::from_ps(u64::MAX - 1),
        };
        assert_eq!(b.total_delay(1), Ps::from_ps(u64::MAX - 1));
        assert_eq!(b.total_delay(2), Ps::MAX);
        assert_eq!(b.total_delay(64), Ps::MAX);
    }

    #[test]
    fn total_delay_sums_the_schedule() {
        let b = ExponentialBackoff {
            base: Ps::from_ps(10),
            cap: Ps::from_ps(40),
        };
        // 10 + 20 + 40 + 40 = 110
        assert_eq!(b.total_delay(4), Ps::from_ps(110));
    }
}
