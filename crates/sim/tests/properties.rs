//! Randomized-property tests for the simulation kernel invariants.
//!
//! The workspace builds offline, so these use the crate's own
//! deterministic [`SplitMix64`] to drive many random cases per property
//! instead of an external property-testing framework.

use ohm_sim::{Calendar, EventQueue, Ps, SplitMix64, TaggedCalendar};

/// The event queue always delivers events in nondecreasing time order,
/// and FIFO among equal timestamps.
#[test]
fn event_queue_is_time_ordered() {
    let mut rng = SplitMix64::new(0xE1);
    for _case in 0..64 {
        let n = 1 + rng.next_below(200) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(Ps::from_ps(rng.next_below(1_000)), i);
        }
        let mut last_time = Ps::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some((t, seq)) = q.pop() {
            assert!(t >= last_time);
            if t == last_time {
                if let Some(prev) = last_seq_at_time {
                    assert!(seq > prev, "FIFO violated at equal timestamps");
                }
            }
            last_time = t;
            last_seq_at_time = Some(seq);
        }
    }
}

/// A calendar never grants overlapping intervals and never lets a
/// booking start before the client is ready.
#[test]
fn calendar_never_double_books() {
    let mut rng = SplitMix64::new(0xCA1);
    for _case in 0..64 {
        let n = 1 + rng.next_below(200) as usize;
        let reqs: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.next_below(10_000), 1 + rng.next_below(499)))
            .collect();
        let mut cal = Calendar::new();
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for &(ready, dur) in &reqs {
            let (start, end) = cal.book(Ps::from_ps(ready), Ps::from_ps(dur));
            assert!(start >= Ps::from_ps(ready));
            assert_eq!(end - start, Ps::from_ps(dur));
            for &(s, e) in &intervals {
                let (ns, ne) = (start.as_ps(), end.as_ps());
                assert!(ne <= s || ns >= e, "overlap: [{ns},{ne}) vs [{s},{e})");
            }
            intervals.push((start.as_ps(), end.as_ps()));
        }
        // Busy time equals the sum of requested durations.
        let total: u64 = reqs.iter().map(|&(_, d)| d).sum();
        assert_eq!(cal.busy_time(), Ps::from_ps(total));
    }
}

/// Tagged busy times always sum to the calendar's total busy time.
#[test]
fn tagged_calendar_tags_partition_busy() {
    let mut rng = SplitMix64::new(0x7A6);
    for _case in 0..64 {
        let n = 1 + rng.next_below(100) as usize;
        let mut cal = TaggedCalendar::new(4);
        for _ in 0..n {
            let ready = rng.next_below(10_000);
            let dur = 1 + rng.next_below(499);
            let tag = rng.next_below(4) as usize;
            cal.book(Ps::from_ps(ready), Ps::from_ps(dur), tag);
        }
        let sum: u64 = (0..4).map(|t| cal.busy_by_tag(t).as_ps()).sum();
        assert_eq!(sum, cal.busy_time().as_ps());
        let frac_sum: f64 = (0..4).map(|t| cal.tag_fraction(t)).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }
}

/// SplitMix64 streams are reproducible and next_below respects bounds.
#[test]
fn rng_reproducible_and_bounded() {
    let mut meta = SplitMix64::new(0x5EED);
    for _case in 0..64 {
        let seed = meta.next_u64();
        let bound = 1 + meta.next_below(1_000_000);
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..50 {
            let x = a.next_below(bound);
            assert_eq!(x, b.next_below(bound));
            assert!(x < bound);
        }
    }
}

/// Ps arithmetic: (a + b) - b == a (with saturating subtraction this
/// holds whenever a + b does not overflow, which the ranges guarantee).
#[test]
fn ps_add_sub_roundtrip() {
    let mut rng = SplitMix64::new(0xADD);
    for _case in 0..10_000 {
        let a = rng.next_below(u32::MAX as u64);
        let b = rng.next_below(u32::MAX as u64);
        let pa = Ps::from_ps(a);
        let pb = Ps::from_ps(b);
        assert_eq!((pa + pb) - pb, pa);
    }
}
