//! Property-based tests for the simulation kernel invariants.

use ohm_sim::{Calendar, EventQueue, Ps, SplitMix64, TaggedCalendar};
use proptest::prelude::*;

proptest! {
    /// The event queue always delivers events in nondecreasing time order,
    /// and FIFO among equal timestamps.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Ps::from_ps(t), i);
        }
        let mut last_time = Ps::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some((t, seq)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(prev) = last_seq_at_time {
                    prop_assert!(seq > prev, "FIFO violated at equal timestamps");
                }
            } else {
                last_seq_at_time = None;
            }
            last_time = t;
            last_seq_at_time = Some(seq);
        }
    }

    /// A calendar never grants overlapping intervals and never lets a
    /// booking start before the client is ready.
    #[test]
    fn calendar_never_double_books(reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..200)) {
        let mut cal = Calendar::new();
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for &(ready, dur) in &reqs {
            let (start, end) = cal.book(Ps::from_ps(ready), Ps::from_ps(dur));
            prop_assert!(start >= Ps::from_ps(ready));
            prop_assert_eq!(end - start, Ps::from_ps(dur));
            for &(s, e) in &intervals {
                let (ns, ne) = (start.as_ps(), end.as_ps());
                prop_assert!(ne <= s || ns >= e, "overlap: [{ns},{ne}) vs [{s},{e})");
            }
            intervals.push((start.as_ps(), end.as_ps()));
        }
        // Busy time equals the sum of requested durations.
        let total: u64 = reqs.iter().map(|&(_, d)| d).sum();
        prop_assert_eq!(cal.busy_time(), Ps::from_ps(total));
    }

    /// Tagged busy times always sum to the calendar's total busy time.
    #[test]
    fn tagged_calendar_tags_partition_busy(
        reqs in prop::collection::vec((0u64..10_000, 1u64..500, 0usize..4), 1..100)
    ) {
        let mut cal = TaggedCalendar::new(4);
        for &(ready, dur, tag) in &reqs {
            cal.book(Ps::from_ps(ready), Ps::from_ps(dur), tag);
        }
        let sum: u64 = (0..4).map(|t| cal.busy_by_tag(t).as_ps()).sum();
        prop_assert_eq!(sum, cal.busy_time().as_ps());
        let frac_sum: f64 = (0..4).map(|t| cal.tag_fraction(t)).sum();
        prop_assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    /// SplitMix64 streams are reproducible and next_below respects bounds.
    #[test]
    fn rng_reproducible_and_bounded(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..50 {
            let x = a.next_below(bound);
            prop_assert_eq!(x, b.next_below(bound));
            prop_assert!(x < bound);
        }
    }

    /// Ps arithmetic: (a + b) - b == a (with saturating subtraction this
    /// holds whenever a + b does not overflow, which the ranges guarantee).
    #[test]
    fn ps_add_sub_roundtrip(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let pa = Ps::from_ps(a);
        let pb = Ps::from_ps(b);
        prop_assert_eq!((pa + pb) - pb, pa);
    }
}
