//! Benchmarks over the policy layers: planar remapping, two-level cache
//! decisions, conflict detection, workload generation and trace parsing.

use ohm_bench::harness::{black_box, BenchGroup};
use ohm_hetero::{ConflictDetector, PlanarConfig, PlanarMapping, TwoLevelCache, TwoLevelConfig};
use ohm_sim::{Addr, Ps, SplitMix64};
use ohm_sm::InstructionStream;
use ohm_workloads::{workload_by_name, KernelWorkload, Trace};

fn main() {
    let group = BenchGroup::new("policies");

    {
        let mut map = PlanarMapping::new(PlanarConfig {
            page_bytes: 4096,
            ratio: 8,
            hot_threshold: 16,
            capacity_bytes: 1024 * 9 * 4096,
        });
        let mut rng = SplitMix64::new(1);
        group.bench("planar_lookup_record_1k", || {
            let mut dram_hits = 0u64;
            for _ in 0..1024 {
                let addr = Addr::new(rng.next_below(1024 * 9) * 4096);
                if let Some(req) = map.record_access(addr) {
                    map.commit_swap(&req);
                }
                if map.lookup(addr).is_dram() {
                    dram_hits += 1;
                }
            }
            black_box(dram_hits);
        });
    }

    {
        let mut cache = TwoLevelCache::new(TwoLevelConfig {
            dram_bytes: 1 << 20,
            xpoint_bytes: 64 << 20,
            line_bytes: 256,
        });
        let mut rng = SplitMix64::new(2);
        group.bench("two_level_access_1k", || {
            let mut hits = 0u64;
            for _ in 0..1024 {
                let addr = Addr::new(rng.next_below(64 << 20) & !255);
                if cache.access(addr, rng.chance(0.3)).is_hit() {
                    hits += 1;
                }
            }
            black_box(hits);
        });
    }

    group.bench("conflict_register_check_1k", || {
        let mut cd = ConflictDetector::new(4096);
        let mut rng = SplitMix64::new(3);
        let mut hits = 0u64;
        for i in 0..256u64 {
            let id = cd.register(
                Addr::new(rng.next_below(1 << 20) & !4095),
                Addr::new(rng.next_below(1 << 20) & !4095),
                Ps::from_us(i),
            );
            for _ in 0..3 {
                if cd
                    .redirect_dram(Addr::new(rng.next_below(1 << 20)))
                    .is_some()
                {
                    hits += 1;
                }
            }
            if i % 2 == 0 {
                cd.complete(id);
            }
        }
        black_box(hits);
    });

    {
        let spec = workload_by_name("pagerank").unwrap();
        let mut k = KernelWorkload::new(spec, 1, 1, u64::MAX / 2, 4);
        group.bench("kernel_slices_1k", || {
            let mut insts = 0u64;
            for _ in 0..1024 {
                if let Some(s) = k.next_slice(0, 0) {
                    insts += s.instructions();
                }
            }
            black_box(insts);
        });
    }

    {
        // Build a 1k-record trace text once, parse it repeatedly.
        let mut text = String::from("ohm-trace v1\n");
        let mut rng = SplitMix64::new(5);
        for i in 0..1024u64 {
            let kind = if rng.chance(0.7) { 'R' } else { 'W' };
            text.push_str(&format!(
                "{} {} {} {} {:#x} 128\n",
                i % 16,
                i % 24,
                i % 50,
                kind,
                i * 128
            ));
        }
        group.bench("trace_parse_1k", || {
            let trace: Trace = black_box(&text).parse().unwrap();
            black_box(trace.len());
        });
    }
}
