//! Macro-benchmarks: one end-to-end platform simulation per evaluated
//! design point, exercising the entire stack (SMs, caches, channel,
//! devices, migration machinery) on a reduced configuration.

use ohm_bench::harness::{black_box, BenchGroup};
use ohm_core::config::SystemConfig;
use ohm_core::runner::Run;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::workload_by_name;

fn main() {
    let mut platforms = BenchGroup::new("platform_end_to_end");
    platforms.sample_size(10).iters_per_batch(1);
    let cfg = SystemConfig::quick_test();
    let spec = workload_by_name("bfsdata").unwrap();
    for platform in Platform::ALL {
        platforms.bench(platform.name(), || {
            let r = Run::new(&cfg)
                .platform(platform)
                .mode(OperationalMode::Planar)
                .workload(&spec)
                .execute();
            black_box(r.ipc);
        });
    }

    let mut modes = BenchGroup::new("mode_end_to_end");
    modes.sample_size(10).iters_per_batch(1);
    let spec = workload_by_name("pagerank").unwrap();
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        modes.bench(&format!("{mode:?}"), || {
            let r = Run::new(&cfg)
                .platform(Platform::OhmWom)
                .mode(mode)
                .workload(&spec)
                .execute();
            black_box(r.avg_mem_latency_ns);
        });
    }
}
