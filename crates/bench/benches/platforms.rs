//! Criterion macro-benchmarks: one end-to-end platform simulation per
//! evaluated design point, exercising the entire stack (SMs, caches,
//! channel, devices, migration machinery) on a reduced configuration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ohm_core::config::SystemConfig;
use ohm_core::runner::run_platform;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::workload_by_name;

fn bench_platforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform_end_to_end");
    group.sample_size(10);
    let cfg = SystemConfig::quick_test();
    let spec = workload_by_name("bfsdata").unwrap();
    for platform in Platform::ALL {
        group.bench_function(platform.name(), |b| {
            b.iter(|| {
                let r = run_platform(&cfg, platform, OperationalMode::Planar, &spec);
                black_box(r.ipc)
            })
        });
    }
    group.finish();
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("mode_end_to_end");
    group.sample_size(10);
    let cfg = SystemConfig::quick_test();
    let spec = workload_by_name("pagerank").unwrap();
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        group.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| {
                let r = run_platform(&cfg, Platform::OhmWom, mode, &spec);
                black_box(r.avg_mem_latency_ns)
            })
        });
    }
    group.finish();
}

criterion_group!(platforms, bench_platforms, bench_modes);
criterion_main!(platforms);
