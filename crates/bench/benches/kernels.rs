//! Micro-benchmarks over the simulator's hot kernels: the DES event
//! queue, calendar booking with backfill, cache lookups, WOM
//! encode/decode, Start-Gap translation and DRAM bank scheduling.

use ohm_bench::harness::{black_box, BenchGroup};
use ohm_mem::{DramConfig, DramModule, MemKind, StartGap};
use ohm_optic::Wom22;
use ohm_sim::{Addr, Calendar, EventQueue, Ps, SplitMix64};
use ohm_sm::{Cache, CacheConfig};

fn main() {
    let group = BenchGroup::new("kernels");

    group.bench("event_queue_push_pop_1k", || {
        let mut q = EventQueue::with_capacity(1024);
        let mut rng = SplitMix64::new(1);
        for i in 0..1024u64 {
            q.push(Ps::from_ps(rng.next_below(1_000_000)), i);
        }
        let mut acc = 0u64;
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e);
        }
        black_box(acc);
    });

    group.bench("calendar_book_backfill_1k", || {
        let mut cal = Calendar::new();
        let mut rng = SplitMix64::new(2);
        for _ in 0..1024 {
            let ready = Ps::from_ps(rng.next_below(100_000));
            cal.book(ready, Ps::from_ps(1 + rng.next_below(500)));
        }
        black_box(cal.busy_time());
    });

    {
        let mut cache = Cache::new(CacheConfig::l2_table1());
        let mut rng = SplitMix64::new(3);
        group.bench("l2_cache_access_1k", || {
            let mut hits = 0u64;
            for _ in 0..1024 {
                let addr = Addr::new(rng.next_below(64 << 20) & !127);
                if cache.access(addr, rng.chance(0.3)).hit {
                    hits += 1;
                }
            }
            black_box(hits);
        });
    }

    group.bench("wom22_encode_decode_1k", || {
        let mut acc = 0u8;
        for i in 0..1024u32 {
            let first = (i % 4) as u8;
            let second = ((i / 4) % 4) as u8;
            let c1 = Wom22::encode_first(first);
            let c2 = Wom22::encode_second(c1, second);
            acc ^= Wom22::decode(c2).1;
        }
        black_box(acc);
    });

    {
        let mut sg = StartGap::new(1 << 20, 128);
        group.bench("start_gap_translate_write_1k", || {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                acc ^= sg.translate(i * 37 % (1 << 20));
                sg.record_write(i % (1 << 20));
            }
            black_box(acc);
        });
    }

    group.bench("dram_bank_schedule_1k", || {
        let mut d = DramModule::new(DramConfig::default());
        let mut rng = SplitMix64::new(5);
        let mut now = Ps::ZERO;
        let mut acc = 0u64;
        for _ in 0..1024 {
            let a = Addr::new(rng.next_below(1 << 26) & !127);
            let kind = if rng.chance(0.7) {
                MemKind::Read
            } else {
                MemKind::Write
            };
            acc ^= d.access(now, a, kind).data_at.as_ps();
            now += Ps::from_ns(5);
        }
        black_box(acc);
    });
}
