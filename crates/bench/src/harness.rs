//! A minimal, dependency-free timing harness for the `benches/` targets.
//!
//! The container this workspace builds in has no network access, so the
//! benchmarks cannot rely on an external framework. This harness keeps the
//! same shape criterion-style code has — named closures timed over many
//! iterations — and reports median / mean / min per iteration.
//!
//! Timings come from [`std::time::Instant`]; each benchmark runs a short
//! warm-up, then a fixed number of timed batches. Results print as one
//! aligned row per benchmark.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], so benchmark bodies can keep the
/// familiar `black_box(...)` idiom.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A named group of benchmarks printed under a common heading.
pub struct BenchGroup {
    name: String,
    batches: usize,
    iters_per_batch: u64,
}

impl BenchGroup {
    /// Creates a group with the default sampling plan (16 batches of 32
    /// iterations after 4 warm-up iterations).
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        println!(
            "{:<40} {:>12} {:>12} {:>12}",
            "benchmark", "median", "mean", "min"
        );
        BenchGroup {
            name: name.to_string(),
            batches: 16,
            iters_per_batch: 32,
        }
    }

    /// Overrides the number of timed batches (samples).
    pub fn sample_size(&mut self, batches: usize) -> &mut Self {
        self.batches = batches.max(2);
        self
    }

    /// Overrides iterations per timed batch.
    pub fn iters_per_batch(&mut self, iters: u64) -> &mut Self {
        self.iters_per_batch = iters.max(1);
        self
    }

    /// Times `f`, printing one result row. The closure is the whole
    /// measured body (state setup belongs outside the call).
    pub fn bench<F: FnMut()>(&self, label: &str, mut f: F) {
        for _ in 0..4 {
            f(); // warm-up
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_batch {
                f();
            }
            per_iter.push(t0.elapsed() / self.iters_per_batch as u32);
        }
        per_iter.sort();
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        let min = per_iter[0];
        println!(
            "{:<40} {:>12} {:>12} {:>12}",
            format!("{}/{label}", self.name),
            fmt_duration(median),
            fmt_duration(mean),
            fmt_duration(min),
        );
    }
}

/// Formats a duration with an adaptive unit (ns/µs/ms/s).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut group = BenchGroup::new("smoke");
        group.sample_size(2).iters_per_batch(1);
        let mut count = 0u64;
        group.bench("counter", || count += 1);
        // 4 warm-up + 2 batches x 1 iteration.
        assert_eq!(count, 6);
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(15)), "15.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(15)), "15.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(11)), "11.00 s");
    }
}
