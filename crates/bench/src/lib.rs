//! Shared plumbing for the Ohm-GPU benchmark harness.
//!
//! The binaries in this crate regenerate the paper's tables and figures
//! (see DESIGN.md's experiment index for the figure <-> binary mapping);
//! this library holds the sweep and formatting helpers they share, plus
//! the self-contained [`harness`] the micro/macro benchmarks run on (the
//! workspace builds fully offline, so no external bench framework).

#![warn(missing_docs)]

pub mod harness;

use ohm_core::config::SystemConfig;
use ohm_core::metrics::SimReport;
use ohm_core::runner;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::{all_workloads, WorkloadSpec};

/// The evaluation workload set: the ten Table II applications at the
/// evaluation footprint.
pub fn evaluation_workloads() -> Vec<WorkloadSpec> {
    all_workloads()
        .into_iter()
        .map(|w| w.with_footprint(SystemConfig::EVALUATION_FOOTPRINT))
        .collect()
}

/// Whether `OHM_PROFILE` asks grid runs to print per-cell wall-clock
/// profiles (sim time, events/sec) to stderr.
pub fn profiling_enabled() -> bool {
    std::env::var("OHM_PROFILE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Runs `platforms` over the full Table II set in `mode` with the
/// evaluation configuration. Returns `grid[workload][platform]`.
///
/// With `OHM_PROFILE=1` in the environment, a per-cell wall-clock
/// profile table is printed to stderr (stdout stays identical, so figure
/// output remains diffable).
pub fn evaluation_grid(platforms: &[Platform], mode: OperationalMode) -> Vec<Vec<SimReport>> {
    let cfg = SystemConfig::evaluation();
    let specs = evaluation_workloads();
    let result = runner::GridRun::new()
        .profile(profiling_enabled())
        .run(&cfg, platforms, mode, &specs);
    if let Some(profiles) = &result.profiles {
        eprint!("{}", runner::format_profiles(profiles));
    }
    result.rows
}

/// Prints a table header row followed by an underline.
pub fn print_header(cols: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(132)));
}

/// Prints one row of right-aligned cells.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{line}");
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats in scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:.2e}")
}

/// Renders a unicode bar of `value` scaled so `max` fills `width` cells —
/// a terminal stand-in for the paper's bar charts.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let cells = (value / max * width as f64).round() as usize;
    "█".repeat(cells.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(sci(7.2e-16), "7.20e-16");
    }

    #[test]
    fn bars_scale_and_clamp() {
        assert_eq!(bar(1.0, 2.0, 10).chars().count(), 5);
        assert_eq!(bar(4.0, 2.0, 10).chars().count(), 10);
        assert_eq!(bar(0.0, 2.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn workload_set_is_complete() {
        let w = evaluation_workloads();
        assert_eq!(w.len(), 10);
        assert!(w
            .iter()
            .all(|s| s.footprint_bytes == SystemConfig::EVALUATION_FOOTPRINT));
    }
}
