//! Table III — cost estimation of the Ohm memories, plus the Figure 15
//! MRR-layout reductions.

use ohm_bench::{print_header, print_row};
use ohm_core::cost::{cost_breakdown, ring_counts, GPU_BASE_USD};
use ohm_hetero::Platform;
use ohm_optic::cost::{MrrLayout, VCSEL_COST_USD};
use ohm_optic::OperationalMode;

fn main() {
    println!("Table III: cost estimation of different Ohm memories\n");
    let widths = [9, 11, 11, 11, 14, 14, 8];
    print_header(
        &[
            "platform",
            "mode",
            "DRAM $",
            "XPoint $",
            "modulators",
            "detectors",
            "VCSEL",
        ],
        &widths,
    );
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        for p in [Platform::OhmBase, Platform::OhmBw] {
            let c = cost_breakdown(p, mode);
            let (m, d) = ring_counts(p, mode);
            print_row(
                &[
                    p.name().to_string(),
                    format!("{mode:?}"),
                    format!("${:.0}", c.dram_usd),
                    format!("${:.0}", c.xpoint_usd),
                    format!("{m}/${:.0}", c.modulators_usd.ceil()),
                    format!("{d}/${:.0}", c.detectors_usd.ceil()),
                    format!("${VCSEL_COST_USD:.0}"),
                ],
                &widths,
            );
        }
    }

    println!("\nTotal platform cost over the ${GPU_BASE_USD:.0} GPU:");
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        let c = cost_breakdown(Platform::OhmBw, mode);
        println!(
            "  Ohm-BW {mode:?}: +${:.0} = +{:.1}% (paper: +7.6% planar, +13.5% two-level)",
            c.memory_system_usd(),
            100.0 * c.memory_system_usd() / GPU_BASE_USD
        );
    }

    println!("\nFigure 15: MRR layout per device pair (general vs mode-specialised)");
    let general = MrrLayout::general();
    println!(
        "  general design: {} rings ({}T + {}R)",
        general.total(),
        general.transmitters(),
        general.receivers()
    );
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        let l = MrrLayout::for_mode(mode);
        println!(
            "  {mode:?}: {} rings -> {:.0}% reduction (paper: 58% planar / 42% two-level)",
            l.total(),
            100.0 * l.reduction_vs_general()
        );
    }
}
