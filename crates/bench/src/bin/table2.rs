//! Table II — workload characteristics.
//!
//! Regenerates the paper's workload table and *verifies* it: each
//! synthetic kernel is drained and its measured APKI and read ratio are
//! printed next to the Table II targets.

use ohm_bench::{f2, print_header, print_row};
use ohm_sm::InstructionStream;
use ohm_workloads::{all_workloads, KernelWorkload};

fn main() {
    println!("Table II: workload characteristics (target vs measured)\n");
    let widths = [9, 6, 12, 10, 12, 10, 10];
    print_header(
        &[
            "app",
            "APKI",
            "APKI(meas)",
            "read",
            "read(meas)",
            "suite",
            "pattern",
        ],
        &widths,
    );
    for spec in all_workloads() {
        let mut k = KernelWorkload::new(spec, 4, 8, 20_000, 42);
        for sm in 0..4 {
            for w in 0..8 {
                while k.next_slice(sm, w).is_some() {}
            }
        }
        let pattern = match spec.pattern {
            ohm_workloads::AccessPattern::Streaming => "stream",
            ohm_workloads::AccessPattern::Blocked { .. } => "blocked",
            ohm_workloads::AccessPattern::Graph { .. } => "graph",
            ohm_workloads::AccessPattern::Uniform => "uniform",
        };
        print_row(
            &[
                spec.name.to_string(),
                spec.apki.to_string(),
                format!("{:.1}", k.measured_apki()),
                f2(spec.read_ratio),
                f2(k.measured_read_ratio()),
                spec.suite.to_string(),
                pattern.to_string(),
            ],
            &widths,
        );
    }
}
