//! Figure 17 — average memory access latency normalised to Ohm-base.
//!
//! Paper shape: Auto-rw −14%/−4% (planar/two-level); Ohm-WOM −28%/−24%
//! vs Auto-rw; Ohm-BW −6% more in planar.

use ohm_bench::{evaluation_grid, f3, print_header, print_row};
use ohm_core::runner::{column_geomeans, geomean};
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::all_workloads;

fn main() {
    // Origin's latency includes host staging and is not comparable; the
    // paper's figure plots the heterogeneous platforms plus Oracle.
    let platforms = [
        Platform::Hetero,
        Platform::OhmBase,
        Platform::AutoRw,
        Platform::OhmWom,
        Platform::OhmBw,
        Platform::Oracle,
    ];
    let names: Vec<&str> = platforms.iter().map(|p| p.name()).collect();
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        println!("Figure 17 ({mode:?}): memory access latency normalised to Ohm-base\n");
        let widths = [9, 8, 9, 8, 8, 8, 8];
        let mut cols = vec!["app"];
        cols.extend(names.iter());
        print_header(&cols, &widths);

        let grid = evaluation_grid(&platforms, mode);
        let normalized: Vec<Vec<f64>> = grid
            .iter()
            .map(|row| {
                let base = row[1].avg_mem_latency_ns;
                row.iter().map(|r| r.avg_mem_latency_ns / base).collect()
            })
            .collect();
        for (spec, row) in all_workloads().iter().zip(&normalized) {
            let mut cells = vec![spec.name.to_string()];
            cells.extend(row.iter().map(|&v| f3(v)));
            print_row(&cells, &widths);
        }
        let means = column_geomeans(&normalized);
        let mut cells = vec!["geomean".to_string()];
        cells.extend(means.iter().map(|&v| f3(v)));
        print_row(&cells, &widths);

        let _ = geomean(&means);
        println!(
            "\nreductions (geomean): Auto-rw {:.0}% vs Ohm-base; Ohm-WOM {:.0}% vs Auto-rw; Ohm-BW {:.0}% vs Ohm-WOM\n",
            100.0 * (1.0 - means[2]),
            100.0 * (1.0 - means[3] / means[2]),
            100.0 * (1.0 - means[4] / means[3]),
        );
    }
}
