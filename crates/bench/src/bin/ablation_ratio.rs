//! Ablation: DRAM : XPoint capacity ratio.
//!
//! Table I fixes 1:8 (planar) and 1:64 (two-level); this sweep shows why —
//! the DRAM share of service and the achieved IPC degrade as DRAM shrinks
//! relative to the working set.

use ohm_bench::{f3, pct, print_header, print_row};
use ohm_core::config::SystemConfig;
use ohm_core::runner::Run;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::workload_by_name;

fn main() {
    let spec = workload_by_name("bfsdata")
        .unwrap()
        .with_footprint(SystemConfig::EVALUATION_FOOTPRINT);
    println!(
        "Ablation: DRAM:XPoint capacity ratio ({}, Ohm-BW)\n",
        spec.name
    );
    let widths = [8, 11, 9, 11, 12, 12];
    print_header(
        &[
            "mode",
            "ratio",
            "IPC",
            "lat(ns)",
            "DRAM share",
            "migrations",
        ],
        &widths,
    );

    for ratio in [4usize, 8, 16, 32] {
        let cfg = SystemConfig::evaluation()
            .to_builder()
            .planar_ratio(ratio)
            .build()
            .expect("valid sweep config");
        let r = Run::new(&cfg)
            .platform(Platform::OhmBw)
            .mode(OperationalMode::Planar)
            .workload(&spec)
            .execute();
        print_row(
            &[
                "planar".to_string(),
                format!("1:{ratio}"),
                f3(r.ipc),
                format!("{:.0}", r.avg_mem_latency_ns),
                pct(r.hetero_dram_hit_rate),
                r.migrations.to_string(),
            ],
            &widths,
        );
    }
    for ratio in [16usize, 32, 64, 128] {
        let cfg = SystemConfig::evaluation()
            .to_builder()
            .two_level_ratio(ratio)
            .build()
            .expect("valid sweep config");
        let r = Run::new(&cfg)
            .platform(Platform::OhmBw)
            .mode(OperationalMode::TwoLevel)
            .workload(&spec)
            .execute();
        print_row(
            &[
                "2-level".to_string(),
                format!("1:{ratio}"),
                f3(r.ipc),
                format!("{:.0}", r.avg_mem_latency_ns),
                pct(r.hetero_dram_hit_rate),
                r.migrations.to_string(),
            ],
            &widths,
        );
    }
    println!("\nMore DRAM per group (smaller ratio) buys hit rate; the paper's");
    println!("1:8 / 1:64 points trade that against capacity and cost (Table III).");
}
