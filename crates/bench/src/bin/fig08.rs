//! Figure 8 — memory bandwidth and latency analysis of the baseline Ohm
//! memory system.
//!
//! For each workload and mode, prints the effective vs wasted (migration)
//! share of the channel's consumed bandwidth, and the average memory
//! latency of Ohm-base normalised to an Oracle that gives migrations a
//! dedicated channel. Paper averages: migration is 39% (planar) / 26%
//! (two-level) of bandwidth; migrations raise latency by 54% / 47%.

use ohm_bench::{evaluation_workloads, pct, print_header, print_row};
use ohm_core::config::SystemConfig;
use ohm_core::runner::Run;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;

fn main() {
    let cfg = SystemConfig::evaluation();
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        println!("Figure 8 ({mode:?}): effective vs migration bandwidth; latency vs Oracle\n");
        let widths = [9, 11, 11, 14];
        print_header(&["app", "effective", "migration", "lat/oracle"], &widths);
        let mut mig_sum = 0.0;
        let mut lat_sum = 0.0;
        let workloads = evaluation_workloads();
        for spec in &workloads {
            let base = Run::new(&cfg)
                .platform(Platform::OhmBase)
                .mode(mode)
                .workload(spec)
                .execute();
            // Oracle channel for migration: Ohm-BW serves migrations on
            // the independent memory route, leaving the data route clean.
            let oracle = Run::new(&cfg)
                .platform(Platform::OhmBw)
                .mode(mode)
                .workload(spec)
                .execute();
            let mig = base.migration_channel_fraction;
            let lat = base.avg_mem_latency_ns / oracle.avg_mem_latency_ns;
            mig_sum += mig;
            lat_sum += lat;
            print_row(
                &[
                    spec.name.to_string(),
                    pct(1.0 - mig),
                    pct(mig),
                    format!("{lat:.2}x"),
                ],
                &widths,
            );
        }
        let n = workloads.len() as f64;
        let paper = match mode {
            OperationalMode::Planar => "39% migration, +54% latency",
            OperationalMode::TwoLevel => "26% migration, +47% latency",
        };
        println!(
            "\naverage: migration {} of consumed bandwidth, latency {:.2}x vs dedicated-channel oracle (paper: {paper})\n",
            pct(mig_sum / n),
            lat_sum / n
        );
    }
}
