//! Lifetime sweep — performance and capacity as the XPoint tier ages.
//!
//! Not a paper figure: the paper sizes the heterogeneous tier at its
//! day-one capacity and leaves endurance as a lifetime *projection*
//! (Section V's Start-Gap discussion). This harness closes the loop:
//! it sweeps the accelerated-aging endurance budget of a
//! [`LifecyclePlan`] downward — each step compressing more device
//! lifetime into one simulated kernel — and reports IPC, memory latency,
//! the ECC/retirement tallies and the *effective* XPoint capacity after
//! wear-out. Expected shape: monotone non-increasing IPC and capacity as
//! the media ages, with the run surviving 100% spare exhaustion on the
//! best-effort dead-line path.
//!
//! `--smoke` runs the quick-test configuration over a reduced sweep for
//! the scheduled CI soak job.

use ohm_bench::{f3, print_header, print_row};
use ohm_core::config::SystemConfig;
use ohm_core::fault::LifecyclePlan;
use ohm_core::system::System;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::workload_by_name;

/// Seed for the sweep's lifecycle plans (fixed: reruns are bit-identical).
const LIFECYCLE_SEED: u64 = 0x11FE;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Endurance budget per wear bucket; 0 = lifecycle disabled (fresh
    // device). Shrinking the budget compresses more aging into the run:
    // 64 writes/bucket outlives this kernel untouched, 16 starts eating
    // spares, 8 and 4 push past spare exhaustion into best-effort dead
    // lines. (Below ~4 the planner has pinned so much of the hot set in
    // DRAM that migration savings offset the media penalty and IPC
    // plateaus; the sweep stops where degradation is still monotone.)
    let endurances: &[u64] = if smoke {
        &[0, 2, 1]
    } else {
        &[0, 64, 16, 8, 4]
    };
    let spec = workload_by_name("pagerank").unwrap();
    println!(
        "Lifetime: Ohm-WOM planar / pagerank under accelerated XPoint aging{}\n",
        if smoke { " (smoke)" } else { "" }
    );
    let widths = [9, 7, 8, 9, 8, 8, 9, 7, 8, 9, 8];
    print_header(
        &[
            "endurance",
            "ipc",
            "lat_ns",
            "ecc_corr",
            "ecc_unc",
            "retired",
            "spares",
            "dead",
            "usable",
            "eff_ratio",
            "pinned",
        ],
        &widths,
    );

    let mut last = None;
    for &e in endurances {
        let base = if smoke {
            SystemConfig::quick_test()
        } else {
            SystemConfig::evaluation()
        };
        let cfg = base
            .to_builder()
            .lifecycle((e > 0).then(|| LifecyclePlan::accelerated(LIFECYCLE_SEED, e)))
            .build()
            .expect("valid sweep config");
        let mut sys = System::new(&cfg, Platform::OhmWom, OperationalMode::Planar, &spec);
        sys.enable_observability();
        let report = sys.run();
        let w = report.wear.clone().unwrap_or_default();
        let planner = w.planner.unwrap_or(ohm_core::metrics::PlannerWear {
            pinned: 0,
            usable_fraction: 1.0,
            effective_ratio: cfg.memory.planar_ratio as f64,
        });
        print_row(
            &[
                if e == 0 {
                    "fresh".to_string()
                } else {
                    e.to_string()
                },
                f3(report.ipc),
                format!("{:.1}", report.avg_mem_latency_ns),
                w.ecc_corrected.to_string(),
                w.ecc_uncorrectable.to_string(),
                w.retired_lines.to_string(),
                format!("{}/{}", w.spares_used, w.spares_total),
                w.dead_lines.to_string(),
                format!("{:.4}", if e == 0 { 1.0 } else { w.usable_capacity }),
                format!("{:.3}", planner.effective_ratio),
                planner.pinned.to_string(),
            ],
            &widths,
        );
        last = Some(report);
    }

    // The lifecycle actions as first-class stages at the oldest point.
    let oldest = last.expect("ran at least one endurance");
    let summary = oldest.stages.expect("observability enabled");
    println!(
        "\nlifecycle stages at endurance {}:",
        endurances.last().unwrap()
    );
    for name in ["ecc-correct", "line-retire", "remap-spare"] {
        if let Some(row) = summary.stages.iter().find(|r| r.name == name) {
            println!(
                "  {:<14} count {:>8}  mean {:>9.1} ns  p99 {:>9.1} ns",
                row.name, row.count, row.mean_ns, row.p99_ns
            );
        }
    }
    if let Some(w) = &oldest.wear {
        if let (Some(first), Some(last)) = (w.capacity_curve.first(), w.capacity_curve.last()) {
            println!(
                "\neffective-capacity curve: {} samples, first escalation at {} \
                 (usable {:.4}), final at {} (usable {:.4})",
                w.capacity_curve.len(),
                first.0,
                first.1,
                last.0,
                last.1
            );
        }
    }
    println!(
        "\n(endurance is the accelerated-aging write budget per wear bucket; \
         'fresh' disables the lifecycle — the day-one device of Figure 16. \
         Retired lines remap into spares until 'spares' exhausts, then die \
         best-effort and shrink usable capacity; the planar planner pins \
         hot pages in DRAM instead of demoting onto dead media.)"
    );
}
