//! Figure 21 — cost-performance analysis of Origin, Ohm-BW and Oracle
//! (higher is better).
//!
//! Paper: Ohm-BW's CP ratio is 155% above Origin and 24% above Oracle.

use ohm_bench::{evaluation_grid, f3, print_header, print_row};
use ohm_core::cost::{cost_breakdown, cost_performance};
use ohm_core::runner::{column_geomeans, normalize_ipc};
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;

fn main() {
    let platforms = [Platform::Origin, Platform::OhmBw, Platform::Oracle];
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        println!("Figure 21 ({mode:?}): cost-performance (normalised perf per $, x1e4)\n");
        let widths = [9, 10, 12, 10];
        print_header(&["platform", "perf", "cost $", "CP"], &widths);

        let grid = evaluation_grid(&platforms, mode);
        let normalized = normalize_ipc(&grid, 0); // vs Origin
        let perf = column_geomeans(&normalized);
        let mut cps = Vec::new();
        for (i, p) in platforms.iter().enumerate() {
            let cost = cost_breakdown(*p, mode).total_usd();
            let cp = cost_performance(perf[i], cost);
            cps.push(cp);
            print_row(
                &[
                    p.name().to_string(),
                    f3(perf[i]),
                    format!("{cost:.0}"),
                    f3(cp),
                ],
                &widths,
            );
        }
        println!(
            "\nOhm-BW CP is {:+.0}% vs Origin (paper +155%) and {:+.0}% vs Oracle (paper +24%)\n",
            100.0 * (cps[1] / cps[0] - 1.0),
            100.0 * (cps[1] / cps[2] - 1.0)
        );
    }
}
