//! Ablation: planar hot-page promotion threshold.
//!
//! The threshold trades DRAM service share against migration traffic —
//! the central planar-mode policy knob. Run on a skewed workload across
//! Ohm-base (migrations on the channel) and Ohm-BW (dual routes).

use ohm_bench::{f3, pct, print_header, print_row};
use ohm_core::config::SystemConfig;
use ohm_core::runner::Run;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::workload_by_name;

fn main() {
    let spec = workload_by_name("pagerank")
        .unwrap()
        .with_footprint(SystemConfig::EVALUATION_FOOTPRINT);
    println!("Ablation: planar hot-page threshold ({})\n", spec.name);
    let widths = [10, 10, 9, 12, 12, 12];
    print_header(
        &[
            "threshold",
            "platform",
            "IPC",
            "migrations",
            "DRAM share",
            "mig-channel",
        ],
        &widths,
    );
    for threshold in [8u32, 16, 32, 64, 128] {
        let cfg = SystemConfig::evaluation()
            .to_builder()
            .hot_threshold(threshold)
            .build()
            .expect("valid sweep config");
        for p in [Platform::OhmBase, Platform::OhmBw] {
            let r = Run::new(&cfg)
                .platform(p)
                .mode(OperationalMode::Planar)
                .workload(&spec)
                .execute();
            print_row(
                &[
                    threshold.to_string(),
                    p.name().to_string(),
                    f3(r.ipc),
                    r.migrations.to_string(),
                    pct(r.hetero_dram_hit_rate),
                    pct(r.migration_channel_fraction),
                ],
                &widths,
            );
        }
    }
    println!("\nDual routes (Ohm-BW) tolerate aggressive thresholds that would");
    println!("swamp Ohm-base's data route with migration traffic.");
}
