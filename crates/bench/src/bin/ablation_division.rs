//! Ablation: static vs dynamic wavelength division.
//!
//! Table I uses the *static* channel division (one virtual channel per
//! memory controller). The dynamic policy of [Li et al., HPCA'13] lets a
//! transfer borrow the earliest-available VC at a retuning cost; this
//! sweep quantifies what Ohm-GPU left on the table by choosing static.

use ohm_bench::{f3, print_header, print_row};
use ohm_core::config::SystemConfig;
use ohm_core::runner::Run;
use ohm_hetero::Platform;
use ohm_optic::{ChannelDivision, OperationalMode};
use ohm_sim::Ps;
use ohm_workloads::workload_by_name;

fn main() {
    println!("Ablation: wavelength-division strategy (Ohm-base, planar)\n");
    let widths = [9, 26, 9, 11, 9];
    print_header(&["app", "strategy", "IPC", "lat(ns)", "util"], &widths);
    for wl in ["pagerank", "bfsdata", "GRAMS"] {
        let spec = workload_by_name(wl)
            .unwrap()
            .with_footprint(SystemConfig::EVALUATION_FOOTPRINT);
        let strategies: [(&str, ChannelDivision); 3] = [
            ("static", ChannelDivision::Static),
            (
                "dynamic (0.5 ns retune)",
                ChannelDivision::Dynamic {
                    reallocation: Ps::from_ps(500),
                },
            ),
            (
                "dynamic (5 ns retune)",
                ChannelDivision::Dynamic {
                    reallocation: Ps::from_ns(5),
                },
            ),
        ];
        for (label, division) in strategies {
            let cfg = SystemConfig::evaluation()
                .to_builder()
                .optical_division(division)
                .build()
                .expect("valid sweep config");
            let r = Run::new(&cfg)
                .platform(Platform::OhmBase)
                .mode(OperationalMode::Planar)
                .workload(&spec)
                .execute();
            print_row(
                &[
                    wl.to_string(),
                    label.to_string(),
                    f3(r.ipc),
                    format!("{:.0}", r.avg_mem_latency_ns),
                    f3(r.channel_utilization),
                ],
                &widths,
            );
        }
    }
    println!("\nBorrowing helps when per-controller load is skewed and the retune");
    println!("is cheap; the paper's static division avoids the arbitration cost.");
}
