//! Table I — system configurations.
//!
//! Prints the simulated system's configuration in the paper's Table I
//! layout, straight from the live config structs so the printed values
//! are the ones every experiment actually runs with.

use ohm_core::config::SystemConfig;
use ohm_optic::{OperationalMode, OpticalPathLoss};

fn main() {
    let cfg = SystemConfig::evaluation();
    println!("Table I: system configurations (values as simulated)\n");

    println!("GPU configuration");
    println!(
        "  SM / freq.            {}/{}",
        cfg.gpu.sms, cfg.gpu.sm.freq
    );
    println!(
        "  L1 cache              {} KB, {}-way, private",
        cfg.gpu.l1.size_bytes / 1024,
        cfg.gpu.l1.ways
    );
    println!(
        "  L2 cache              {} KB, {}-way, shared (scaled with footprints; Table I: 6 MB)",
        cfg.gpu.l2.size_bytes / 1024,
        cfg.gpu.l2.ways
    );
    println!(
        "  Electrical channels   {} channels / {}-bit / {}",
        cfg.electrical.channels, cfg.electrical.width_bits, cfg.electrical.freq
    );

    println!("\nOptical channel configuration");
    println!(
        "  Channel width         {} bits",
        cfg.optical.grid.total_wavelengths()
    );
    println!("  Frequency             {}", cfg.optical.freq);
    println!("  Strategy              Static channel division");
    println!("  Virtual channels      {}", cfg.optical.grid.channels());
    println!(
        "  Aggregate bandwidth   {:.0} GB/s (matches {:.0} GB/s electrical)",
        cfg.optical.total_bandwidth_gbps(),
        cfg.electrical.total_bandwidth_gbps()
    );

    println!("\nMemory configuration");
    println!("  tRCD (DRAM)           {}", cfg.memory.dram_timing.trcd);
    println!("  tRP  (DRAM)           {}", cfg.memory.dram_timing.trp);
    println!("  tCL  (DRAM)           {}", cfg.memory.dram_timing.tcl);
    println!("  tRRD                  {}", cfg.memory.dram_timing.trrd);
    println!(
        "  PRAM read             {}",
        cfg.memory.xpoint.media.read_latency
    );
    println!(
        "  PRAM write            {}",
        cfg.memory.xpoint.media.write_latency
    );

    println!("\nDRAM : XPoint capacity (per mode)");
    for (mode, label) in [
        (OperationalMode::Planar, "Planar memory"),
        (OperationalMode::TwoLevel, "Two-level memory"),
    ] {
        let ratio = match mode {
            OperationalMode::Planar => cfg.memory.planar_ratio,
            OperationalMode::TwoLevel => cfg.memory.two_level_ratio,
        };
        let fp = SystemConfig::EVALUATION_FOOTPRINT;
        let dram = cfg.dram_capacity_for(mode, fp);
        println!(
            "  {label:<18}  1:{ratio}, footprint {} MB -> DRAM {} MB (paper: 108/390 GB unscaled)",
            fp >> 20,
            dram >> 20
        );
    }

    println!("\nOptical power model");
    println!("  MRR tuning power      200 fJ/bit");
    println!(
        "  Filter drop           {} dB",
        OpticalPathLoss::FILTER_DROP_DB
    );
    println!(
        "  Waveguide loss        {} dB/cm",
        OpticalPathLoss::WAVEGUIDE_DB_PER_CM
    );
    println!(
        "  Optical splitter      {} dB",
        OpticalPathLoss::SPLITTER_DB
    );
    println!(
        "  Detector loss         {} dB",
        OpticalPathLoss::DETECTOR_DB
    );
    println!("  Modulator loss        0~1 dB");
}
