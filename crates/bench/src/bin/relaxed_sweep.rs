//! Accuracy-vs-speed sweep for the relaxed sharding window
//! (DESIGN.md §3.8, recorded in EXPERIMENTS.md).
//!
//! Strict mode bounds every epoch by the cross-shard latency floor and
//! is bit-identical to the serial event loop; relaxed mode stretches the
//! window by a multiplier, trading timing fidelity for fewer epoch
//! barriers. This harness runs the pagerank corner at a fixed worker
//! count across window multipliers and reports, per point: simulation
//! throughput, the relative error of IPC / makespan / mean memory
//! latency against the strict reference, and whether the run stayed
//! deterministic (each point runs twice and must reproduce itself).
//!
//! ```text
//! relaxed_sweep [--threads N] [--mults LIST]   (defaults: 2 and 1,2,4,8,16)
//! ```
//!
//! Multiplier 1 runs strict sharding (the bit-identity baseline); it is
//! asserted equal to the serial reference, so the error columns measure
//! pure window relaxation, never sharding bugs.

use ohm_core::config::SystemConfig;
use ohm_core::system::System;
use ohm_core::SimReport;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::{all_workloads, WorkloadSpec};

fn usage() -> ! {
    eprintln!("usage: relaxed_sweep [--threads N] [--mults LIST]  (LIST e.g. 1,2,4,8,16)");
    std::process::exit(2);
}

fn spec() -> WorkloadSpec {
    all_workloads()
        .into_iter()
        .find(|s| s.name == "pagerank")
        .expect("pagerank is a Table II workload")
        .with_footprint(SystemConfig::EVALUATION_FOOTPRINT / 2)
}

/// One measured point: the report plus its wall clock.
fn run_point(threads: usize, mult: Option<f64>) -> (SimReport, f64) {
    let cfg = SystemConfig::quick_test();
    let mut sys = System::new(&cfg, Platform::OhmBase, OperationalMode::Planar, &spec());
    sys.set_cell_threads(threads);
    if let Some(m) = mult {
        sys.set_relaxed_window(m);
    }
    let start = std::time::Instant::now();
    let report = sys.run();
    (report, start.elapsed().as_secs_f64())
}

fn rel_err(x: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        return 0.0;
    }
    (x - reference).abs() / reference
}

fn main() {
    let mut threads = 2usize;
    let mut mults = vec![1.0, 2.0, 4.0, 8.0, 16.0];
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => usage(),
            },
            "--mults" => match it.next().map(|v| {
                v.split(',')
                    .map(|s| s.trim().parse::<f64>().ok().filter(|m| *m >= 1.0))
                    .collect::<Option<Vec<f64>>>()
            }) {
                Some(Some(m)) if !m.is_empty() => mults = m,
                _ => usage(),
            },
            _ => usage(),
        }
    }

    let (reference, serial_wall) = run_point(1, None);
    let serial_eps =
        (reference.instructions + reference.mem_requests) as f64 / serial_wall.max(1e-9);
    println!(
        "reference: serial, {:.0} events/sec, ipc {:.6}, makespan {:.3} us",
        serial_eps,
        reference.ipc,
        reference.makespan.as_us_f64()
    );
    println!(
        "| window | events/sec | vs serial | IPC err | makespan err | mem-lat err | deterministic |"
    );
    println!("|---|---|---|---|---|---|---|");
    for &m in &mults {
        let mult = (m > 1.0).then_some(m);
        let (a, wall_a) = run_point(threads, mult);
        let (b, _) = run_point(threads, mult);
        let eps = (a.instructions + a.mem_requests) as f64 / wall_a.max(1e-9);
        if mult.is_none() {
            assert_eq!(a, reference, "strict sharding must match serial");
        }
        println!(
            "| {}x | {:.0} | {:.2}x | {:.3}% | {:.3}% | {:.3}% | {} |",
            m,
            eps,
            eps / serial_eps,
            rel_err(a.ipc, reference.ipc) * 100.0,
            rel_err(a.makespan.as_us_f64(), reference.makespan.as_us_f64()) * 100.0,
            rel_err(a.avg_mem_latency_ns, reference.avg_mem_latency_ns) * 100.0,
            a == b
        );
    }
}
