//! Chrome-trace exporter — runs one platform/workload cell with the
//! observability sinks enabled and writes the request-path timeline as a
//! Chrome trace-event JSON file (loadable in Perfetto / `chrome://tracing`).
//!
//! ```text
//! export_trace [--workload NAME] [--platform NAME] [--mode planar|two-level]
//!              [--out PATH] [--eval]
//! ```
//!
//! Defaults: pagerank on Ohm-base in planar mode with the quick-test
//! configuration, written to `trace.json`. `--eval` switches to the full
//! evaluation configuration and footprint (slower, paper-scale).

use ohm_core::config::SystemConfig;
use ohm_core::system::System;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::workload_by_name;

struct Args {
    workload: String,
    platform: Platform,
    mode: OperationalMode,
    out: String,
    eval: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: export_trace [--workload NAME] [--platform NAME] \
         [--mode planar|two-level] [--out PATH] [--eval]"
    );
    eprintln!(
        "platforms: {}",
        Platform::ALL
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn platform_by_name(name: &str) -> Option<Platform> {
    Platform::ALL
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(name))
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "pagerank".to_string(),
        platform: Platform::OhmBase,
        mode: OperationalMode::Planar,
        out: "trace.json".to_string(),
        eval: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workload" => args.workload = it.next().unwrap_or_else(|| usage()),
            "--platform" => {
                let name = it.next().unwrap_or_else(|| usage());
                args.platform = platform_by_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown platform {name:?}");
                    usage()
                });
            }
            "--mode" => {
                args.mode = match it.next().as_deref() {
                    Some("planar") => OperationalMode::Planar,
                    Some("two-level") => OperationalMode::TwoLevel,
                    _ => usage(),
                }
            }
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            "--eval" => args.eval = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = if args.eval {
        SystemConfig::evaluation()
    } else {
        SystemConfig::quick_test()
    };
    let mut spec = workload_by_name(&args.workload).unwrap_or_else(|| {
        eprintln!("unknown workload {:?}", args.workload);
        usage()
    });
    if args.eval {
        spec = spec.with_footprint(SystemConfig::EVALUATION_FOOTPRINT);
    }

    let wall = std::time::Instant::now();
    let mut sys = System::new(&cfg, args.platform, args.mode, &spec);
    sys.enable_observability();
    let report = sys.run();
    let trace = sys
        .chrome_trace()
        .expect("observability was enabled before the run");
    let wall = wall.elapsed();

    std::fs::write(&args.out, &trace).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    });

    println!(
        "{} / {} / {:?}: makespan {}, {} instructions, {} memory requests",
        args.platform.name(),
        spec.name,
        args.mode,
        report.makespan,
        report.instructions,
        report.mem_requests,
    );
    println!();
    let stages = report.stages.as_ref().expect("observability enabled");
    print!("{}", stages.format_table());
    println!();
    println!(
        "wrote {} ({} bytes) in {:.2}s — open in https://ui.perfetto.dev",
        args.out,
        trace.len(),
        wall.as_secs_f64()
    );
}
