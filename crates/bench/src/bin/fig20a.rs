//! Figure 20a — performance with multiple optical waveguides.
//!
//! The optical channel scales by adding waveguides under the same area
//! budget as the electrical lanes. Paper shape: Ohm-base with 8
//! waveguides beats Hetero by ~41%; Ohm-BW gains a further ~17% from
//! more waveguides.

use ohm_bench::{evaluation_workloads, f3, print_header, print_row};
use ohm_core::config::SystemConfig;
use ohm_core::runner::{geomean, Run};
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;

fn main() {
    let mode = OperationalMode::Planar;
    // A representative memory-intensive subset keeps the sweep quick.
    let workloads: Vec<_> = evaluation_workloads()
        .into_iter()
        .filter(|w| ["pagerank", "bfsdata", "GRAMS", "betw"].contains(&w.name))
        .collect();

    println!("Figure 20a: IPC vs waveguide count (geomean over memory-intensive apps),");
    println!("normalised to Hetero (electrical)\n");
    let widths = [11, 10, 10];
    print_header(&["waveguides", "Ohm-base", "Ohm-BW"], &widths);

    let cfg0 = SystemConfig::evaluation();
    let hetero: Vec<f64> = workloads
        .iter()
        .map(|w| {
            Run::new(&cfg0)
                .platform(Platform::Hetero)
                .mode(mode)
                .workload(w)
                .execute()
                .ipc
        })
        .collect();
    let hetero_g = geomean(&hetero);

    for waveguides in [1u32, 2, 4, 8] {
        let cfg = SystemConfig::evaluation()
            .to_builder()
            .optical_waveguides(waveguides)
            .build()
            .expect("valid sweep config");
        let base: Vec<f64> = workloads
            .iter()
            .map(|w| {
                Run::new(&cfg)
                    .platform(Platform::OhmBase)
                    .mode(mode)
                    .workload(w)
                    .execute()
                    .ipc
            })
            .collect();
        let bw: Vec<f64> = workloads
            .iter()
            .map(|w| {
                Run::new(&cfg)
                    .platform(Platform::OhmBw)
                    .mode(mode)
                    .workload(w)
                    .execute()
                    .ipc
            })
            .collect();
        print_row(
            &[
                waveguides.to_string(),
                f3(geomean(&base) / hetero_g),
                f3(geomean(&bw) / hetero_g),
            ],
            &widths,
        );
    }
    println!("\n(paper: Ohm-base with 8 waveguides ~1.41x Hetero; Ohm-BW gains a further ~17%)");
}
