//! Figure 3 — breakdown analysis of executing GPU applications on a
//! GPU + SSD system (`Origin`).
//!
//! 3a: execution-time breakdown into GPU compute, host↔GPU data transfer
//! and storage access (paper averages: 34% / 45% / 21%).
//! 3b: impact of the staging path on execution time and energy.

use ohm_bench::{evaluation_workloads, pct, print_header, print_row};
use ohm_core::config::SystemConfig;
use ohm_core::runner::Run;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;

fn main() {
    let cfg = SystemConfig::evaluation();
    println!("Figure 3a: execution breakdown on the GPU+SSD platform (Origin)\n");
    let widths = [9, 10, 10, 10, 12];
    print_header(
        &["app", "compute", "transfer", "storage", "makespan"],
        &widths,
    );

    let mut sums = (0.0, 0.0, 0.0);
    let mut slowdowns = Vec::new();
    let workloads = evaluation_workloads();
    for spec in &workloads {
        let origin = Run::new(&cfg)
            .platform(Platform::Origin)
            .mode(OperationalMode::Planar)
            .workload(spec)
            .execute();
        let host = origin.host.expect("origin reports staging");
        let total = origin.makespan.as_secs_f64();
        let storage = host.storage_busy.as_secs_f64().min(total);
        let transfer = host.dma_busy.as_secs_f64().min(total - storage);
        let compute = (total - storage - transfer).max(0.0);
        let (c, t, s) = (compute / total, transfer / total, storage / total);
        sums.0 += c;
        sums.1 += t;
        sums.2 += s;
        print_row(
            &[
                spec.name.to_string(),
                pct(c),
                pct(t),
                pct(s),
                format!("{}", origin.makespan),
            ],
            &widths,
        );

        // For 3b: compare against an Origin whose working set fits (no
        // staging), isolating DMA/DRAM impact.
        let oracle = Run::new(&cfg)
            .platform(Platform::Oracle)
            .mode(OperationalMode::Planar)
            .workload(spec)
            .execute();
        slowdowns.push((
            spec.name,
            origin.makespan.as_secs_f64() / oracle.makespan.as_secs_f64(),
            origin.energy.total_j() / oracle.energy.total_j(),
        ));
    }
    let n = workloads.len() as f64;
    println!(
        "\naverage: compute {} transfer {} storage {}  (paper: 34% / 45% / 21%)",
        pct(sums.0 / n),
        pct(sums.1 / n),
        pct(sums.2 / n)
    );

    println!("\nFigure 3b: staging impact vs an in-memory (Oracle) run\n");
    let widths = [9, 16, 16];
    print_header(&["app", "time x", "energy x"], &widths);
    let mut gt = 1.0f64;
    let mut ge = 1.0f64;
    for (name, t, e) in &slowdowns {
        print_row(
            &[name.to_string(), format!("{t:.2}"), format!("{e:.2}")],
            &widths,
        );
        gt *= t;
        ge *= e;
    }
    println!(
        "\ngeomean: time {:.2}x energy {:.2}x (paper: staging degrades time 31% / energy 19% at the memory level)",
        gt.powf(1.0 / n),
        ge.powf(1.0 / n)
    );
}
