//! Figure 19 — energy breakdown of the evaluated GPU memory systems.
//!
//! Components: channel/DMA energy (electrical switching, or MRR tuning +
//! laser), DRAM static, DRAM dynamic, XPoint. Paper shape: the optical
//! channel cuts DMA energy by ~57% vs Hetero; Ohm-WOM trims static DRAM
//! energy via shorter runtimes; dual-route platforms pay more laser
//! power; overall Ohm-WOM is slightly below Ohm-base.

use ohm_bench::{evaluation_grid, print_header, print_row};
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;

fn main() {
    let platforms = [
        Platform::Hetero,
        Platform::OhmBase,
        Platform::AutoRw,
        Platform::OhmWom,
        Platform::OhmBw,
    ];
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        println!("Figure 19 ({mode:?}): memory-system energy, mJ summed over Table II\n");
        let widths = [9, 10, 12, 12, 10, 10];
        print_header(
            &[
                "platform",
                "DMA",
                "DRAM stat",
                "DRAM dyn",
                "XPoint",
                "total",
            ],
            &widths,
        );

        let grid = evaluation_grid(&platforms, mode);
        let mut dma = Vec::new();
        for (i, p) in platforms.iter().enumerate() {
            let mut sum = ohm_core::metrics::EnergyReport::default();
            for row in &grid {
                let e = row[i].energy;
                sum.dma_j += e.dma_j;
                sum.dram_static_j += e.dram_static_j;
                sum.dram_dynamic_j += e.dram_dynamic_j;
                sum.xpoint_j += e.xpoint_j;
            }
            dma.push(sum.dma_j);
            print_row(
                &[
                    p.name().to_string(),
                    format!("{:.3}", sum.dma_j * 1e3),
                    format!("{:.3}", sum.dram_static_j * 1e3),
                    format!("{:.3}", sum.dram_dynamic_j * 1e3),
                    format!("{:.3}", sum.xpoint_j * 1e3),
                    format!("{:.3}", sum.total_j() * 1e3),
                ],
                &widths,
            );
        }
        println!(
            "\nDMA energy: Ohm-base is {:.0}% below Hetero (paper: 57%)\n",
            100.0 * (1.0 - dma[1] / dma[0])
        );
    }
}
