//! Ablation: Start-Gap rotation period (psi) vs wear and lifetime.
//!
//! Smaller psi rotates more aggressively: flatter wear (longer media
//! lifetime) at the cost of more leveling copies on the media.

use ohm_bench::{f3, print_header, print_row};
use ohm_mem::StartGap;
use ohm_sim::SplitMix64;

fn main() {
    println!("Ablation: Start-Gap rotation period under skewed writes\n");
    let widths = [8, 12, 12, 14, 16];
    print_header(
        &[
            "psi",
            "gap moves",
            "imbalance",
            "overhead",
            "lifetime (rel)",
        ],
        &widths,
    );

    const LINES: u64 = 1024;
    const WRITES: u64 = 2_000_000;
    let mut baseline_life = None;
    for psi in [4096u32, 512, 128, 32, 8] {
        let mut sg = StartGap::new(LINES, psi);
        let mut rng = SplitMix64::new(11);
        for _ in 0..WRITES {
            // 90% of writes hammer a single pathological line.
            let line = if rng.chance(0.9) {
                7
            } else {
                rng.next_below(LINES)
            };
            sg.record_write(line);
        }
        let stats = sg.wear_stats();
        let overhead = stats.gap_moves as f64 / WRITES as f64;
        let life = sg.lifetime_secs(1.0, 10_000_000).expect("writes observed");
        let base = *baseline_life.get_or_insert(life);
        print_row(
            &[
                psi.to_string(),
                stats.gap_moves.to_string(),
                f3(stats.imbalance),
                format!("{:.2}%", overhead * 100.0),
                format!("{:.2}x", life / base),
            ],
            &widths,
        );
    }
    println!("\nSmaller psi means more full rotations over the run, so a hammered");
    println!("line's writes spread over more physical slots (longer lifetime) at");
    println!("the cost of more leveling copies. Start-Gap only migrates a hot");
    println!("line one slot per full rotation, so the knee sits where rotation");
    println!("overhead is still a few percent — the paper's mid-range choice.");
}
