//! LLM inference phase breakdown — the phase-structured workload of
//! `PhasePlan::llm_inference` across the heterogeneous platforms.
//!
//! Not a paper figure: the paper evaluates Table 2's HPC/graph kernels.
//! This harness drives the reference LLM serving plan
//! (prefill-GEMM → softmax → decode-GEMV → KV-append → KV-scan) through
//! the same cells and reports the per-phase breakdown that
//! [`SimReport::phases`](ohm_core::SimReport) adds: per-phase IPC,
//! memory latency, and — the point of the exercise — the DRAM/XPoint
//! service split. The KV-cache phases walk the top 37.5% of the
//! footprint, far beyond the planar DRAM slice, so on the heterogeneous
//! platforms `kv-scan` is the phase that lives or dies by the optical
//! channel's migration throughput.
//!
//! `--smoke` runs the quick-test configuration for the scheduled CI job.

use ohm_bench::{f3, print_header, print_row};
use ohm_core::config::SystemConfig;
use ohm_core::runner::Run;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::{workload_by_name, PhasePlan};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let base = if smoke {
        SystemConfig::quick_test()
    } else {
        SystemConfig::evaluation()
    };
    let cfg = base
        .to_builder()
        .phases(Some(PhasePlan::llm_inference()))
        .build()
        .expect("valid phased config");
    // The spec contributes the footprint the plan's slices divide up;
    // gctopo's is the largest graph footprint in Table 2.
    let spec = workload_by_name("gctopo").unwrap();

    println!(
        "LLM phases: prefill/softmax/decode/KV plan on gctopo's footprint{}\n",
        if smoke { " (smoke)" } else { "" }
    );

    // Headline: whole-run numbers per platform, as the other figures
    // report them, so the phased run stays comparable.
    let widths = [9, 7, 8, 10, 9, 9, 9];
    print_header(
        &[
            "platform", "ipc", "lat_ns", "mem_reqs", "dram_hit", "migr", "chan_use",
        ],
        &widths,
    );
    let cells = [
        (Platform::Hetero, OperationalMode::TwoLevel),
        (Platform::OhmBase, OperationalMode::TwoLevel),
        (Platform::OhmWom, OperationalMode::TwoLevel),
    ];
    let mut reports = Vec::new();
    for (platform, mode) in cells {
        let report = Run::new(&cfg)
            .platform(platform)
            .mode(mode)
            .workload(&spec)
            .execute();
        print_row(
            &[
                format!("{platform:?}"),
                f3(report.ipc),
                format!("{:.1}", report.avg_mem_latency_ns),
                report.mem_requests.to_string(),
                f3(report.hetero_dram_hit_rate),
                report.migrations.to_string(),
                f3(report.channel_utilization),
            ],
            &widths,
        );
        reports.push((platform, report));
    }

    // Per-phase breakdown for each platform.
    for (platform, report) in &reports {
        let summary = report.phases.as_ref().expect("phased config");
        println!("\n{platform:?} per-phase breakdown:");
        print!("{}", summary.format_table());
    }

    println!(
        "\n(phases progress per-lane by instruction budget; 'dram'/'xpoint' \
         count requests served by each tier, attributed to the phase that \
         issued them. prefill/softmax/decode walk the lower half of the \
         footprint and mostly hit migrated DRAM; kv-append/kv-scan walk \
         the top 37.5% — beyond the planar DRAM slice — so their split is \
         the direct read of how well each platform migrates the KV cache.)"
    );
}
