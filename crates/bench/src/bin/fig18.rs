//! Figure 18 — fraction of the optical channel (data route) consumed by
//! data migration.
//!
//! Paper shape: Auto-rw reduces migration bandwidth by 8%/17% vs
//! Ohm-base; Ohm-WOM reduces it by a further 54% in planar mode and
//! fully eliminates it in two-level mode.

use ohm_bench::{evaluation_grid, pct, print_header, print_row};
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::all_workloads;

fn main() {
    let platforms = [
        Platform::OhmBase,
        Platform::AutoRw,
        Platform::OhmWom,
        Platform::OhmBw,
    ];
    let names: Vec<&str> = platforms.iter().map(|p| p.name()).collect();
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        println!("Figure 18 ({mode:?}): migration share of data-route bandwidth\n");
        let widths = [9, 9, 9, 9, 9];
        let mut cols = vec!["app"];
        cols.extend(names.iter());
        print_header(&cols, &widths);

        let grid = evaluation_grid(&platforms, mode);
        let mut sums = vec![0.0; platforms.len()];
        for (spec, row) in all_workloads().iter().zip(&grid) {
            let mut cells = vec![spec.name.to_string()];
            for (i, r) in row.iter().enumerate() {
                sums[i] += r.migration_channel_fraction;
                cells.push(pct(r.migration_channel_fraction));
            }
            print_row(&cells, &widths);
        }
        let n = grid.len() as f64;
        let mut cells = vec!["average".to_string()];
        cells.extend(sums.iter().map(|s| pct(s / n)));
        print_row(&cells, &widths);
        let paper = match mode {
            OperationalMode::Planar => "paper: base ~39%, WOM cuts most of it",
            OperationalMode::TwoLevel => "paper: base ~26%, WOM eliminates it",
        };
        println!("\n({paper})\n");
    }
}
