//! Simulation-throughput baseline — events/sec over the tier-1 grid.
//!
//! Not a paper figure: this harness measures the *simulator itself*.
//! It runs the tier-1 grid (quick-test configuration, the ten Table II
//! workloads at the tier-1 footprint, all seven platforms, planar mode)
//! with per-cell wall-clock profiling, and writes the result as
//! `BENCH_throughput.json` — the committed perf trajectory of the repo.
//!
//! ```text
//! perf_baseline [--smoke] [--reps N] [--out PATH] [--no-compare]
//!               [--footprint LIST] [--cell-threads LIST]
//!               [--checkpoint PATH]
//! ```
//!
//! `--checkpoint PATH` runs the measured grid through the durable-sweep
//! journal (DESIGN.md §3.10): completed cells are appended to `PATH`, a
//! re-run resumes from it, and the run is fault-isolated so a broken
//! cell quarantines instead of aborting. Forces `--reps 1` — a resumed
//! repetition replays from the journal in ~zero wall time, which would
//! corrupt a best-of-reps measurement. The CI chaos job SIGKILLs a
//! checkpointed smoke run partway, resumes it, and compares the
//! `grid_digest:` lines (printed on every run) to pin the
//! resume-bit-identity guarantee.
//!
//! Cells run serially (the grid runner's `threads = 1`) so per-cell wall
//! clocks are not polluted by core contention; each cell keeps the best
//! (fastest) of `--reps` repetitions. `--smoke` shrinks the grid to a
//! 3 platform × 2 workload corner with one repetition for CI.
//!
//! `--footprint 256M,1G,4G,16G` additionally sweeps a small fixed grid
//! across workload footprints, recording geomean events/sec *and* the
//! process peak RSS after each point — the committed evidence that
//! simulation throughput and resident memory are footprint-independent
//! (the memory stack stores its state sparsely, DESIGN.md §3.7). Full
//! runs sweep that default list even without the flag; smoke runs sweep
//! only what the flag names. Points run in ascending footprint order
//! because `VmHWM` is a monotonic high-water mark: a flat `peak_rss_kb`
//! column across ascending points is exactly the bounded-memory claim.
//!
//! `--cell-threads 1,2,4` additionally sweeps the intra-cell sharded
//! event loop (DESIGN.md §3.8) over worker counts on the pagerank
//! corner, one cell at a time so each point owns the machine, recording
//! per-platform events/sec and the speedup over the one-thread point.
//! Full runs sweep `1,2,4` by default; smoke runs sweep only what the
//! flag names. Strict mode keeps the *simulated* results bit-identical
//! across the sweep — only the wall clock moves.
//!
//! If a previous baseline already exists at the output path, the new
//! measurement is compared against it cell-by-cell (matched on
//! platform × workload, so a smoke run compares only the cells it ran)
//! before the file is rewritten. A >20% geomean regression prints a
//! GitHub `::warning::` annotation — advisory, never an exit failure,
//! because shared CI runners are noisy.
//!
//! See DESIGN.md §3.6 for the format and the rebaselining procedure.

use std::time::Duration;

use ohm_core::config::SystemConfig;
use ohm_core::json::escape_json;
use ohm_core::runner::{self, CellOutcome, CellProfile, GridRun};
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::{all_workloads, WorkloadSpec};

/// Regression threshold for the advisory CI warning.
const REGRESSION_WARN: f64 = 0.20;

/// Geomean events/sec of the tier-1 grid measured at the
/// pre-optimisation seed (commit 23a125a) on the reference dev host —
/// the denominator of the JSON's `speedup_vs_reference` field. The
/// number is host-specific: update it alongside the committed baseline
/// when rebaselining on new hardware (DESIGN.md §3.6).
const PRE_OPT_GEOMEAN: f64 = 10.69e6;

/// Footprints a full (non-smoke) run sweeps when `--footprint` is not
/// given: tier-1's 256 MiB up to the tens-of-GiB regime the sparse
/// memory-system state exists for.
const DEFAULT_FOOTPRINTS: &str = "256M,1G,4G,16G";

/// Advisory threshold for the footprint sweep: warn when throughput at a
/// larger footprint drops below this fraction of the smallest point's
/// (footprint-independent simulation should stay roughly flat).
const FOOTPRINT_WARN_FRACTION: f64 = 0.5;

/// Cell-thread counts a full (non-smoke) run sweeps when
/// `--cell-threads` is not given.
const DEFAULT_CELL_THREADS: &str = "1,2,4";

struct Args {
    smoke: bool,
    reps: usize,
    out: String,
    compare: bool,
    /// Footprint sweep points in bytes (ascending); empty to skip.
    footprints: Vec<u64>,
    /// Intra-cell worker counts to sweep (ascending); empty to skip.
    cell_threads: Vec<usize>,
    /// Durable-sweep journal for the measured grid; `None` runs plain.
    checkpoint: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: perf_baseline [--smoke] [--reps N] [--out PATH] [--no-compare] \
         [--footprint LIST] [--cell-threads LIST] [--checkpoint PATH]  \
         (LIST e.g. 256M,1G,16G / 1,2,4)"
    );
    std::process::exit(2);
}

/// Parses a size with an optional K/M/G suffix (`256M`, `16G`, `4096`).
fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, mult) = match s.char_indices().find(|(_, c)| !c.is_ascii_digit()) {
        None => (s, 1u64),
        Some((i, _)) => {
            let mult = match s[i..].to_ascii_uppercase().as_str() {
                "K" | "KIB" => 1u64 << 10,
                "M" | "MIB" => 1 << 20,
                "G" | "GIB" => 1 << 30,
                _ => return None,
            };
            (&s[..i], mult)
        }
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

fn parse_footprint_list(list: &str) -> Option<Vec<u64>> {
    let mut points = list
        .split(',')
        .map(parse_size)
        .collect::<Option<Vec<u64>>>()?;
    points.sort_unstable();
    points.dedup();
    Some(points)
}

/// Parses an ascending, deduplicated positive-integer list (`1,2,4`).
fn parse_thread_list(list: &str) -> Option<Vec<usize>> {
    let mut points = list
        .split(',')
        .map(|s| s.trim().parse::<usize>().ok().filter(|&n| n > 0))
        .collect::<Option<Vec<usize>>>()?;
    points.sort_unstable();
    points.dedup();
    Some(points)
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        reps: 3,
        out: "BENCH_throughput.json".to_string(),
        compare: true,
        footprints: Vec::new(),
        cell_threads: Vec::new(),
        checkpoint: None,
    };
    let mut explicit_footprints = false;
    let mut explicit_cell_threads = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--no-compare" => args.compare = false,
            "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => args.reps = n,
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(p) => args.out = p,
                None => usage(),
            },
            "--footprint" => match it.next().as_deref().and_then(parse_footprint_list) {
                Some(points) => {
                    args.footprints = points;
                    explicit_footprints = true;
                }
                None => usage(),
            },
            "--cell-threads" => match it.next().as_deref().and_then(parse_thread_list) {
                Some(points) => {
                    args.cell_threads = points;
                    explicit_cell_threads = true;
                }
                None => usage(),
            },
            "--checkpoint" => match it.next() {
                Some(p) => args.checkpoint = Some(p),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if args.smoke {
        args.reps = 1;
    }
    if args.checkpoint.is_some() && args.reps != 1 {
        eprintln!("perf_baseline: --checkpoint forces --reps 1 (resumed reps replay for free)");
        args.reps = 1;
    }
    if !args.smoke && !explicit_footprints {
        args.footprints = parse_footprint_list(DEFAULT_FOOTPRINTS).unwrap();
    }
    if !args.smoke && !explicit_cell_threads {
        args.cell_threads = parse_thread_list(DEFAULT_CELL_THREADS).unwrap();
    }
    let cfg = SystemConfig::quick_test();
    for &f in &args.footprints {
        if let Err(e) = cfg.validate_footprint(f) {
            eprintln!("perf_baseline: {e}");
            usage();
        }
    }
    args
}

/// The tier-1 grid: quick-test configuration at the integration-test
/// footprint (half the evaluation footprint, as `tests/platform_chain.rs`
/// uses), planar mode.
fn tier1_specs() -> Vec<WorkloadSpec> {
    all_workloads()
        .into_iter()
        .map(|w| w.with_footprint(SystemConfig::EVALUATION_FOOTPRINT / 2))
        .collect()
}

fn measured_grid(smoke: bool) -> (Vec<Platform>, Vec<WorkloadSpec>) {
    let specs = tier1_specs();
    if smoke {
        let platforms = vec![Platform::Hetero, Platform::OhmBase, Platform::OhmBw];
        let specs = specs
            .into_iter()
            .filter(|s| s.name == "lud" || s.name == "pagerank")
            .collect();
        (platforms, specs)
    } else {
        (Platform::ALL.to_vec(), specs)
    }
}

/// One measured cell: best-of-reps wall clock and the derived rate.
struct Cell {
    platform: &'static str,
    workload: String,
    events: u64,
    wall: Duration,
    events_per_sec: f64,
}

/// Durable-execution summary of the measured grid: the content digest
/// (the resume-bit-identity golden value) and the per-outcome counts
/// the CI chaos job asserts on.
struct GridSummary {
    digest: u64,
    completed: usize,
    cached: usize,
    quarantined: usize,
    timed_out: usize,
}

impl GridSummary {
    fn of(result: &ohm_core::runner::GridResult) -> Self {
        let mut s = GridSummary {
            digest: result.digest(),
            completed: 0,
            cached: 0,
            quarantined: 0,
            timed_out: 0,
        };
        for o in &result.outcomes {
            match o {
                CellOutcome::Completed => s.completed += 1,
                CellOutcome::Cached => s.cached += 1,
                CellOutcome::Quarantined(_) => s.quarantined += 1,
                CellOutcome::TimedOut(_) => s.timed_out += 1,
            }
        }
        s
    }
}

fn measure(
    platforms: &[Platform],
    specs: &[WorkloadSpec],
    reps: usize,
    checkpoint: Option<&str>,
) -> (Vec<Cell>, GridSummary) {
    let cfg = SystemConfig::quick_test();
    let mut best: Vec<Option<CellProfile>> = vec![None; platforms.len() * specs.len()];
    let mut summary = None;
    for rep in 0..reps {
        let mut run = GridRun::serial().profile(true);
        if let Some(path) = checkpoint {
            // Isolated so a broken cell is quarantined and reported in
            // the outcome counts instead of aborting the durability run.
            run = run.checkpoint(path).isolate(true);
        }
        let result = run.run(&cfg, platforms, OperationalMode::Planar, specs);
        summary = Some(GridSummary::of(&result));
        let profiles = result.profiles.expect("profiling was requested");
        for (slot, p) in best.iter_mut().zip(profiles) {
            let faster = slot.as_ref().is_none_or(|b| p.wall < b.wall);
            if faster {
                *slot = Some(p);
            }
        }
        eprintln!("rep {}/{} done", rep + 1, reps);
    }
    let cells = best
        .into_iter()
        .map(|p| {
            let p = p.expect("every cell measured");
            let events = (p.events_per_sec * p.wall.as_secs_f64()).round() as u64;
            Cell {
                platform: p.platform.name(),
                workload: p.workload,
                events,
                wall: p.wall,
                events_per_sec: p.events_per_sec,
            }
        })
        .collect();
    (cells, summary.expect("at least one rep"))
}

/// One measured footprint-sweep point.
struct FootprintPoint {
    bytes: u64,
    geomean_events_per_sec: f64,
    /// Process peak RSS (`VmHWM`) after the point completed, in KiB.
    /// Monotonic across the sweep — see the module docs. 0 when the
    /// platform exposes no `/proc/self/status`.
    peak_rss_kb: u64,
}

/// Human label for a footprint byte count (`256M`, `16G`, `1536K`, ...).
fn size_label(bytes: u64) -> String {
    for (shift, suffix) in [(30u32, "G"), (20, "M"), (10, "K")] {
        if bytes >= 1 << shift && bytes.is_multiple_of(1 << shift) {
            return format!("{}{suffix}", bytes >> shift);
        }
    }
    format!("{bytes}")
}

/// The process's peak resident set size (`VmHWM`) in KiB; 0 where
/// `/proc/self/status` is unavailable (non-Linux hosts).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Counts the CPUs in a `/sys/devices/system/cpu/online` range list
/// (`0-11`, `0,2-5`, ...).
fn count_cpu_list(list: &str) -> Option<u64> {
    let mut n = 0u64;
    for part in list.trim().split(',') {
        match part.split_once('-') {
            None => {
                part.parse::<u64>().ok()?;
                n += 1;
            }
            Some((lo, hi)) => {
                let (lo, hi): (u64, u64) = (lo.parse().ok()?, hi.parse().ok()?);
                n += hi.checked_sub(lo)? + 1;
            }
        }
    }
    Some(n)
}

/// CPUs physically online on the machine, regardless of this process's
/// affinity mask. Falls back to the affinity-visible count where sysfs
/// is unavailable. Recorded separately from `cpus_available` because CI
/// containers routinely pin the process to a subset (historically this
/// file claimed `"cpus": 1` on a many-core machine).
fn online_cpus() -> u64 {
    std::fs::read_to_string("/sys/devices/system/cpu/online")
        .ok()
        .and_then(|s| count_cpu_list(&s))
        .unwrap_or_else(available_cpus)
}

/// CPUs this process may schedule on (its affinity mask) — what the
/// serial measurement actually had available.
fn available_cpus() -> u64 {
    std::thread::available_parallelism().map_or(0, |n| n.get() as u64)
}

/// Runs the footprint sweep: a small fixed grid (the smoke corner) per
/// point, one rep, ascending footprints.
fn measure_footprints(points: &[u64]) -> Vec<FootprintPoint> {
    let cfg = SystemConfig::quick_test();
    let platforms = [Platform::Hetero, Platform::OhmBase, Platform::OhmBw];
    points
        .iter()
        .map(|&bytes| {
            let specs: Vec<WorkloadSpec> = all_workloads()
                .into_iter()
                .filter(|s| s.name == "lud" || s.name == "pagerank")
                .map(|w| w.with_footprint(bytes))
                .collect();
            let result = GridRun::serial().profile(true).run(
                &cfg,
                &platforms,
                OperationalMode::Planar,
                &specs,
            );
            let profiles = result.profiles.expect("profiling was requested");
            let rates: Vec<f64> = profiles.iter().map(|p| p.events_per_sec).collect();
            let point = FootprintPoint {
                bytes,
                geomean_events_per_sec: runner::geomean(&rates),
                peak_rss_kb: peak_rss_kb(),
            };
            eprintln!(
                "footprint {}: geomean {:.0} events/sec, peak rss {} kB",
                size_label(bytes),
                point.geomean_events_per_sec,
                point.peak_rss_kb
            );
            point
        })
        .collect()
}

/// One measured cell-thread sweep point (one platform at one worker
/// count on the pagerank corner).
struct CellThreadPoint {
    threads: usize,
    platform: &'static str,
    events_per_sec: f64,
    /// Events/sec relative to the same platform's one-thread point
    /// (1.0 when the sweep does not include threads = 1).
    speedup: f64,
    /// Whether the sharded scheduler actually engaged (false at one
    /// thread, or when the configuration fell back to serial).
    engaged: bool,
}

/// Sweeps the intra-cell sharded event loop over `counts` worker
/// threads: pagerank (the memory-bound corner the sharding targets)
/// across three platforms, one cell at a time, best-of-`reps`.
///
/// Points call [`ohm_core::system::System::set_cell_threads`] directly rather than going
/// through the grid runner's oversubscription budget: each point owns
/// the whole machine, and the axis exists to measure the sharded
/// scheduler itself — including, honestly, its barrier overhead when
/// the host exposes fewer cores than the requested workers.
fn measure_cell_threads(counts: &[usize], reps: usize) -> Vec<CellThreadPoint> {
    let cfg = SystemConfig::quick_test();
    let platforms = [Platform::Hetero, Platform::OhmBase, Platform::OhmBw];
    let spec = tier1_specs()
        .into_iter()
        .find(|s| s.name == "pagerank")
        .expect("pagerank is a Table II workload");
    let mut points = Vec::new();
    for &threads in counts {
        for &platform in &platforms {
            let mut best: Option<(Duration, u64)> = None;
            let mut engaged = false;
            for _ in 0..reps {
                let mut sys =
                    ohm_core::system::System::new(&cfg, platform, OperationalMode::Planar, &spec);
                sys.set_cell_threads(threads);
                let start = std::time::Instant::now();
                let report = sys.run();
                let wall = start.elapsed();
                engaged = sys.used_cell_parallelism();
                let events = report.instructions + report.mem_requests;
                if best.as_ref().is_none_or(|(b, _)| wall < *b) {
                    best = Some((wall, events));
                }
            }
            let (wall, events) = best.expect("at least one rep");
            let events_per_sec = events as f64 / wall.as_secs_f64().max(1e-9);
            let serial_eps = points
                .iter()
                .find(|q: &&CellThreadPoint| q.threads == 1 && q.platform == platform.name())
                .map(|q| q.events_per_sec);
            points.push(CellThreadPoint {
                threads,
                platform: platform.name(),
                events_per_sec,
                speedup: serial_eps.map_or(1.0, |s| events_per_sec / s.max(1e-9)),
                engaged,
            });
            eprintln!(
                "cell-threads {threads}: {} {:.0} events/sec ({:.2}x{})",
                platform.name(),
                events_per_sec,
                points.last().unwrap().speedup,
                if engaged { ", sharded" } else { ", serial" }
            );
        }
    }
    points
}

/// Renders the measurement as the committed JSON document (hand-rolled,
/// like `trace.rs`: the workspace is dependency-free). One cell per line
/// with a fixed key order — `parse_baseline` below relies on that shape.
/// Free-form strings (host facts, workload names) go through
/// [`escape_json`] so an exotic value cannot corrupt the document.
fn render_json(
    cells: &[Cell],
    footprints: &[FootprintPoint],
    cell_threads: &[CellThreadPoint],
    reps: usize,
    geomean: f64,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 2,\n");
    let _ = writeln!(
        out,
        "  \"grid\": \"quick_test x Table II (256 MiB footprint) x Planar, serial cells\","
    );
    let _ = writeln!(
        out,
        "  \"host\": {{ \"os\": \"{}\", \"arch\": \"{}\", \"cpus_available\": {}, \
         \"cpus_online\": {} }},",
        escape_json(std::env::consts::OS),
        escape_json(std::env::consts::ARCH),
        available_cpus(),
        online_cpus()
    );
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(out, "  \"geomean_events_per_sec\": {geomean:.1},");
    let _ = writeln!(
        out,
        "  \"reference\": {{ \"label\": \"pre-optimisation seed (23a125a)\", \
         \"geomean_events_per_sec\": {PRE_OPT_GEOMEAN:.1}, \
         \"speedup_vs_reference\": {:.3} }},",
        geomean / PRE_OPT_GEOMEAN
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"platform\": \"{}\", \"workload\": \"{}\", \"events\": {}, \
             \"wall_ms\": {:.3}, \"events_per_sec\": {:.1} }}",
            escape_json(c.platform),
            escape_json(&c.workload),
            c.events,
            c.wall.as_secs_f64() * 1e3,
            c.events_per_sec
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    if footprints.is_empty() && cell_threads.is_empty() {
        out.push_str("  ]\n}\n");
        return out;
    }
    out.push_str("  ],\n");
    if !cell_threads.is_empty() {
        let _ = writeln!(
            out,
            "  \"cell_thread_sweep\": \"quick_test x pagerank (256 MiB) x {{Hetero, \
             Ohm-base, Ohm-bw}} x Planar, one cell at a time, best of {reps}; strict \
             sharded event loop (DESIGN.md section 3.8), simulated results identical \
             across the sweep\","
        );
        out.push_str("  \"cell_threads\": [\n");
        for (i, p) in cell_threads.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"threads\": {}, \"platform\": \"{}\", \
                 \"cell_events_per_sec\": {:.1}, \"speedup_vs_1t\": {:.3}, \
                 \"sharded\": {} }}",
                p.threads,
                escape_json(p.platform),
                p.events_per_sec,
                p.speedup,
                p.engaged
            );
            out.push_str(if i + 1 < cell_threads.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        if footprints.is_empty() {
            out.push_str("  ]\n}\n");
            return out;
        }
        out.push_str("  ],\n");
    }
    let _ = writeln!(
        out,
        "  \"footprint_grid\": \"quick_test x {{lud, pagerank}} x {{Hetero, Ohm-base, \
         Ohm-bw}} x Planar, serial cells, 1 rep; peak_rss_kb is the process VmHWM after \
         the point (monotonic across the ascending sweep)\","
    );
    out.push_str("  \"footprints\": [\n");
    for (i, p) in footprints.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"footprint\": \"{}\", \"bytes\": {}, \"geomean_events_per_sec\": {:.1}, \
             \"peak_rss_kb\": {} }}",
            size_label(p.bytes),
            p.bytes,
            p.geomean_events_per_sec,
            p.peak_rss_kb
        );
        out.push_str(if i + 1 < footprints.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(platform, workload) -> events_per_sec` from a baseline
/// file previously written by `render_json` (line-oriented scan; no JSON
/// dependency in the workspace).
fn parse_baseline(text: &str) -> Vec<(String, String, f64)> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find(['"', ',', ' ', '}']).unwrap_or(rest.len());
        Some(&rest[..end])
    }
    text.lines()
        .filter(|l| l.contains("\"platform\"") && l.contains("\"events_per_sec\""))
        .filter_map(|l| {
            let p = field(l, "platform")?.to_string();
            let w = field(l, "workload")?.to_string();
            let eps: f64 = field(l, "events_per_sec")?.parse().ok()?;
            Some((p, w, eps))
        })
        .collect()
}

/// Compares the new cells against a prior baseline over the matched
/// subset, returning `(speedup, matched_cells)`.
fn compare(cells: &[Cell], baseline: &[(String, String, f64)]) -> Option<(f64, usize)> {
    let ratios: Vec<f64> = cells
        .iter()
        .filter_map(|c| {
            baseline
                .iter()
                .find(|(p, w, _)| p == c.platform && w == &c.workload)
                .map(|(_, _, base)| c.events_per_sec / base.max(1e-9))
        })
        .collect();
    if ratios.is_empty() {
        None
    } else {
        Some((runner::geomean(&ratios), ratios.len()))
    }
}

fn main() {
    let args = parse_args();
    let (platforms, specs) = measured_grid(args.smoke);
    eprintln!(
        "perf_baseline: {} platforms x {} workloads, {} rep(s){}",
        platforms.len(),
        specs.len(),
        args.reps,
        if args.smoke { " (smoke)" } else { "" }
    );

    let (cells, summary) = measure(&platforms, &specs, args.reps, args.checkpoint.as_deref());
    let rates: Vec<f64> = cells.iter().map(|c| c.events_per_sec).collect();
    let geomean = runner::geomean(&rates);

    println!(
        "{:<10} {:<10} {:>10} {:>10} {:>14}",
        "platform", "workload", "events", "wall_ms", "events/sec"
    );
    for c in &cells {
        println!(
            "{:<10} {:<10} {:>10} {:>10.3} {:>14.0}",
            c.platform,
            c.workload,
            c.events,
            c.wall.as_secs_f64() * 1e3,
            c.events_per_sec
        );
    }
    println!("geomean events/sec: {geomean:.0}");
    // The resume-bit-identity golden value and the outcome tally — the
    // CI chaos job greps both lines, so keep their shape stable.
    println!("grid_digest: {:016x}", summary.digest);
    println!(
        "grid_cells: {} completed, {} cached, {} quarantined, {} timed-out",
        summary.completed, summary.cached, summary.quarantined, summary.timed_out
    );

    if args.compare {
        if let Ok(prev) = std::fs::read_to_string(&args.out) {
            match compare(&cells, &parse_baseline(&prev)) {
                Some((speedup, n)) => {
                    println!("vs committed baseline ({n} matched cells): {speedup:.3}x");
                    if speedup < 1.0 - REGRESSION_WARN {
                        println!(
                            "::warning title=perf regression::geomean events/sec is \
                             {speedup:.3}x the committed baseline (threshold {:.2}x); \
                             rebaseline with `cargo run --release -p ohm-bench --bin \
                             perf_baseline` if intended",
                            1.0 - REGRESSION_WARN
                        );
                    }
                }
                None => eprintln!("no matching cells in {}; skipping comparison", args.out),
            }
        }
    }

    let cell_threads = if args.cell_threads.is_empty() {
        Vec::new()
    } else {
        eprintln!(
            "cell-thread sweep: {}",
            args.cell_threads
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let points = measure_cell_threads(&args.cell_threads, args.reps);
        println!(
            "{:<8} {:<10} {:>16} {:>12}",
            "threads", "platform", "events/sec", "vs 1t"
        );
        for p in &points {
            println!(
                "{:<8} {:<10} {:>16.0} {:>11.2}x",
                p.threads, p.platform, p.events_per_sec, p.speedup
            );
        }
        points
    };

    let footprints = if args.footprints.is_empty() {
        Vec::new()
    } else {
        eprintln!(
            "footprint sweep: {}",
            args.footprints
                .iter()
                .map(|&b| size_label(b))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let points = measure_footprints(&args.footprints);
        println!("{:<10} {:>16} {:>14}", "footprint", "events/sec", "rss_kb");
        for p in &points {
            println!(
                "{:<10} {:>16.0} {:>14}",
                size_label(p.bytes),
                p.geomean_events_per_sec,
                p.peak_rss_kb
            );
        }
        warn_on_footprint_degradation(&points);
        points
    };

    let json = render_json(&cells, &footprints, &cell_threads, args.reps, geomean);
    std::fs::write(&args.out, &json).expect("write baseline JSON");
    eprintln!("wrote {}", args.out);
}

/// Advisory check that throughput stays roughly flat across the
/// footprint sweep. Returns the offending point for testability.
fn warn_on_footprint_degradation(points: &[FootprintPoint]) -> Option<u64> {
    let first = points.first()?;
    let floor = first.geomean_events_per_sec * FOOTPRINT_WARN_FRACTION;
    let bad = points.iter().find(|p| p.geomean_events_per_sec < floor)?;
    println!(
        "::warning title=superlinear footprint degradation::geomean events/sec at {} \
         ({:.0}) is below {FOOTPRINT_WARN_FRACTION}x the {} point ({:.0}); simulation \
         throughput should be footprint-independent (DESIGN.md section 3.7)",
        size_label(bad.bytes),
        bad.geomean_events_per_sec,
        size_label(first.bytes),
        first.geomean_events_per_sec
    );
    Some(bad.bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrip() {
        let cells = vec![
            Cell {
                platform: "Ohm-base",
                workload: "lud".into(),
                events: 100,
                wall: Duration::from_millis(2),
                events_per_sec: 50_000.0,
            },
            Cell {
                platform: "Oracle",
                workload: "pagerank".into(),
                events: 300,
                wall: Duration::from_millis(3),
                events_per_sec: 100_000.0,
            },
        ];
        let footprints = vec![
            FootprintPoint {
                bytes: 256 << 20,
                geomean_events_per_sec: 1e6,
                peak_rss_kb: 50_000,
            },
            FootprintPoint {
                bytes: 16 << 30,
                geomean_events_per_sec: 0.9e6,
                peak_rss_kb: 52_000,
            },
        ];
        let sweep = vec![
            CellThreadPoint {
                threads: 1,
                platform: "Ohm-base",
                events_per_sec: 1e6,
                speedup: 1.0,
                engaged: false,
            },
            CellThreadPoint {
                threads: 4,
                platform: "Ohm-base",
                events_per_sec: 1.5e6,
                speedup: 1.5,
                engaged: true,
            },
        ];
        let json = render_json(&cells, &footprints, &sweep, 3, 70_710.7);
        assert!(json.contains("\"footprint\": \"16G\""));
        assert!(json.contains("\"speedup_vs_1t\": 1.500"));
        // Neither the footprint nor the sweep lines may confuse the
        // cell-oriented parser (the sweep's rate key is deliberately
        // `cell_events_per_sec`, which the cell filter cannot match).
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "Ohm-base");
        assert_eq!(parsed[0].1, "lud");
        assert!((parsed[0].2 - 50_000.0).abs() < 0.1);
        let (speedup, n) = compare(&cells, &parsed).unwrap();
        assert_eq!(n, 2);
        assert!((speedup - 1.0).abs() < 1e-9);
        // A sweep-free document keeps the schema-1 shape.
        let plain = render_json(&cells, &[], &[], 3, 70_710.7);
        assert!(!plain.contains("footprints"));
        assert!(!plain.contains("cell_threads"));
        assert_eq!(parse_baseline(&plain).len(), 2);
        // A cell-threads-only document stays well-formed.
        let ct_only = render_json(&cells, &[], &sweep, 3, 70_710.7);
        assert!(ct_only.contains("\"cell_threads\": ["));
        assert!(ct_only.trim_end().ends_with('}'));
        assert_eq!(parse_baseline(&ct_only).len(), 2);
    }

    #[test]
    fn thread_list_parsing() {
        assert_eq!(parse_thread_list("1,2,4"), Some(vec![1, 2, 4]));
        assert_eq!(parse_thread_list("4, 2,2"), Some(vec![2, 4]));
        assert_eq!(parse_thread_list("0"), None);
        assert_eq!(parse_thread_list("x"), None);
    }

    #[test]
    fn size_parsing_round_trips() {
        assert_eq!(parse_size("256M"), Some(256 << 20));
        assert_eq!(parse_size("16G"), Some(16u64 << 30));
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size("1KiB"), Some(1024));
        assert_eq!(parse_size("12X"), None);
        assert_eq!(parse_size(""), None);
        assert_eq!(
            parse_footprint_list("1G,256M,1G"),
            Some(vec![256 << 20, 1 << 30])
        );
        assert_eq!(size_label(256 << 20), "256M");
        assert_eq!(size_label(16u64 << 30), "16G");
        assert_eq!(size_label(4096), "4K");
        assert_eq!(size_label(3000), "3000");
    }

    #[test]
    fn cpu_list_counting() {
        assert_eq!(count_cpu_list("0-11\n"), Some(12));
        assert_eq!(count_cpu_list("0"), Some(1));
        assert_eq!(count_cpu_list("0,2-5,7"), Some(6));
        assert_eq!(count_cpu_list("garbage"), None);
    }

    #[test]
    fn footprint_degradation_warning_triggers_on_slowdown() {
        let point = |bytes: u64, eps: f64| FootprintPoint {
            bytes,
            geomean_events_per_sec: eps,
            peak_rss_kb: 0,
        };
        let flat = vec![point(256 << 20, 1e6), point(16 << 30, 0.8e6)];
        assert_eq!(warn_on_footprint_degradation(&flat), None);
        let degraded = vec![point(256 << 20, 1e6), point(16 << 30, 0.4e6)];
        assert_eq!(warn_on_footprint_degradation(&degraded), Some(16 << 30));
        assert_eq!(warn_on_footprint_degradation(&[]), None);
    }
}
