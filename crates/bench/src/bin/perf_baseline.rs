//! Simulation-throughput baseline — events/sec over the tier-1 grid.
//!
//! Not a paper figure: this harness measures the *simulator itself*.
//! It runs the tier-1 grid (quick-test configuration, the ten Table II
//! workloads at the tier-1 footprint, all seven platforms, planar mode)
//! with per-cell wall-clock profiling, and writes the result as
//! `BENCH_throughput.json` — the committed perf trajectory of the repo.
//!
//! ```text
//! perf_baseline [--smoke] [--reps N] [--out PATH] [--no-compare]
//! ```
//!
//! Cells run serially (the grid runner's `threads = 1`) so per-cell wall
//! clocks are not polluted by core contention; each cell keeps the best
//! (fastest) of `--reps` repetitions. `--smoke` shrinks the grid to a
//! 3 platform × 2 workload corner with one repetition for CI.
//!
//! If a previous baseline already exists at the output path, the new
//! measurement is compared against it cell-by-cell (matched on
//! platform × workload, so a smoke run compares only the cells it ran)
//! before the file is rewritten. A >20% geomean regression prints a
//! GitHub `::warning::` annotation — advisory, never an exit failure,
//! because shared CI runners are noisy.
//!
//! See DESIGN.md §3.6 for the format and the rebaselining procedure.

use std::time::Duration;

use ohm_core::config::SystemConfig;
use ohm_core::runner::{self, CellProfile, GridRun};
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::{all_workloads, WorkloadSpec};

/// Regression threshold for the advisory CI warning.
const REGRESSION_WARN: f64 = 0.20;

/// Geomean events/sec of the tier-1 grid measured at the
/// pre-optimisation seed (commit 23a125a) on the reference dev host —
/// the denominator of the JSON's `speedup_vs_reference` field. The
/// number is host-specific: update it alongside the committed baseline
/// when rebaselining on new hardware (DESIGN.md §3.6).
const PRE_OPT_GEOMEAN: f64 = 10.69e6;

struct Args {
    smoke: bool,
    reps: usize,
    out: String,
    compare: bool,
}

fn usage() -> ! {
    eprintln!("usage: perf_baseline [--smoke] [--reps N] [--out PATH] [--no-compare]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        reps: 3,
        out: "BENCH_throughput.json".to_string(),
        compare: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--no-compare" => args.compare = false,
            "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => args.reps = n,
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(p) => args.out = p,
                None => usage(),
            },
            _ => usage(),
        }
    }
    if args.smoke {
        args.reps = 1;
    }
    args
}

/// The tier-1 grid: quick-test configuration at the integration-test
/// footprint (half the evaluation footprint, as `tests/platform_chain.rs`
/// uses), planar mode.
fn tier1_specs() -> Vec<WorkloadSpec> {
    all_workloads()
        .into_iter()
        .map(|w| w.with_footprint(SystemConfig::EVALUATION_FOOTPRINT / 2))
        .collect()
}

fn measured_grid(smoke: bool) -> (Vec<Platform>, Vec<WorkloadSpec>) {
    let specs = tier1_specs();
    if smoke {
        let platforms = vec![Platform::Hetero, Platform::OhmBase, Platform::OhmBw];
        let specs = specs
            .into_iter()
            .filter(|s| s.name == "lud" || s.name == "pagerank")
            .collect();
        (platforms, specs)
    } else {
        (Platform::ALL.to_vec(), specs)
    }
}

/// One measured cell: best-of-reps wall clock and the derived rate.
struct Cell {
    platform: &'static str,
    workload: String,
    events: u64,
    wall: Duration,
    events_per_sec: f64,
}

fn measure(platforms: &[Platform], specs: &[WorkloadSpec], reps: usize) -> Vec<Cell> {
    let cfg = SystemConfig::quick_test();
    let mut best: Vec<Option<CellProfile>> = vec![None; platforms.len() * specs.len()];
    for rep in 0..reps {
        let result =
            GridRun::serial()
                .profile(true)
                .run(&cfg, platforms, OperationalMode::Planar, specs);
        let profiles = result.profiles.expect("profiling was requested");
        for (slot, p) in best.iter_mut().zip(profiles) {
            let faster = slot.as_ref().is_none_or(|b| p.wall < b.wall);
            if faster {
                *slot = Some(p);
            }
        }
        eprintln!("rep {}/{} done", rep + 1, reps);
    }
    best.into_iter()
        .map(|p| {
            let p = p.expect("every cell measured");
            let events = (p.events_per_sec * p.wall.as_secs_f64()).round() as u64;
            Cell {
                platform: p.platform.name(),
                workload: p.workload,
                events,
                wall: p.wall,
                events_per_sec: p.events_per_sec,
            }
        })
        .collect()
}

/// Renders the measurement as the committed JSON document (hand-rolled,
/// like `trace.rs`: the workspace is dependency-free). One cell per line
/// with a fixed key order — `parse_baseline` below relies on that shape.
fn render_json(cells: &[Cell], reps: usize, geomean: f64) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    let _ = writeln!(
        out,
        "  \"grid\": \"quick_test x Table II (256 MiB footprint) x Planar, serial cells\","
    );
    let _ = writeln!(
        out,
        "  \"host\": {{ \"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {} }},",
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(out, "  \"geomean_events_per_sec\": {geomean:.1},");
    let _ = writeln!(
        out,
        "  \"reference\": {{ \"label\": \"pre-optimisation seed (23a125a)\", \
         \"geomean_events_per_sec\": {PRE_OPT_GEOMEAN:.1}, \
         \"speedup_vs_reference\": {:.3} }},",
        geomean / PRE_OPT_GEOMEAN
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"platform\": \"{}\", \"workload\": \"{}\", \"events\": {}, \
             \"wall_ms\": {:.3}, \"events_per_sec\": {:.1} }}",
            c.platform,
            c.workload,
            c.events,
            c.wall.as_secs_f64() * 1e3,
            c.events_per_sec
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(platform, workload) -> events_per_sec` from a baseline
/// file previously written by `render_json` (line-oriented scan; no JSON
/// dependency in the workspace).
fn parse_baseline(text: &str) -> Vec<(String, String, f64)> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find(['"', ',', ' ', '}']).unwrap_or(rest.len());
        Some(&rest[..end])
    }
    text.lines()
        .filter(|l| l.contains("\"platform\"") && l.contains("\"events_per_sec\""))
        .filter_map(|l| {
            let p = field(l, "platform")?.to_string();
            let w = field(l, "workload")?.to_string();
            let eps: f64 = field(l, "events_per_sec")?.parse().ok()?;
            Some((p, w, eps))
        })
        .collect()
}

/// Compares the new cells against a prior baseline over the matched
/// subset, returning `(speedup, matched_cells)`.
fn compare(cells: &[Cell], baseline: &[(String, String, f64)]) -> Option<(f64, usize)> {
    let ratios: Vec<f64> = cells
        .iter()
        .filter_map(|c| {
            baseline
                .iter()
                .find(|(p, w, _)| p == c.platform && w == &c.workload)
                .map(|(_, _, base)| c.events_per_sec / base.max(1e-9))
        })
        .collect();
    if ratios.is_empty() {
        None
    } else {
        Some((runner::geomean(&ratios), ratios.len()))
    }
}

fn main() {
    let args = parse_args();
    let (platforms, specs) = measured_grid(args.smoke);
    eprintln!(
        "perf_baseline: {} platforms x {} workloads, {} rep(s){}",
        platforms.len(),
        specs.len(),
        args.reps,
        if args.smoke { " (smoke)" } else { "" }
    );

    let cells = measure(&platforms, &specs, args.reps);
    let rates: Vec<f64> = cells.iter().map(|c| c.events_per_sec).collect();
    let geomean = runner::geomean(&rates);

    println!(
        "{:<10} {:<10} {:>10} {:>10} {:>14}",
        "platform", "workload", "events", "wall_ms", "events/sec"
    );
    for c in &cells {
        println!(
            "{:<10} {:<10} {:>10} {:>10.3} {:>14.0}",
            c.platform,
            c.workload,
            c.events,
            c.wall.as_secs_f64() * 1e3,
            c.events_per_sec
        );
    }
    println!("geomean events/sec: {geomean:.0}");

    if args.compare {
        if let Ok(prev) = std::fs::read_to_string(&args.out) {
            match compare(&cells, &parse_baseline(&prev)) {
                Some((speedup, n)) => {
                    println!("vs committed baseline ({n} matched cells): {speedup:.3}x");
                    if speedup < 1.0 - REGRESSION_WARN {
                        println!(
                            "::warning title=perf regression::geomean events/sec is \
                             {speedup:.3}x the committed baseline (threshold {:.2}x); \
                             rebaseline with `cargo run --release -p ohm-bench --bin \
                             perf_baseline` if intended",
                            1.0 - REGRESSION_WARN
                        );
                    }
                }
                None => eprintln!("no matching cells in {}; skipping comparison", args.out),
            }
        }
    }

    let json = render_json(&cells, args.reps, geomean);
    std::fs::write(&args.out, &json).expect("write baseline JSON");
    eprintln!("wrote {}", args.out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrip() {
        let cells = vec![
            Cell {
                platform: "Ohm-base",
                workload: "lud".into(),
                events: 100,
                wall: Duration::from_millis(2),
                events_per_sec: 50_000.0,
            },
            Cell {
                platform: "Oracle",
                workload: "pagerank".into(),
                events: 300,
                wall: Duration::from_millis(3),
                events_per_sec: 100_000.0,
            },
        ];
        let json = render_json(&cells, 3, 70_710.7);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "Ohm-base");
        assert_eq!(parsed[0].1, "lud");
        assert!((parsed[0].2 - 50_000.0).abs() < 0.1);
        let (speedup, n) = compare(&cells, &parsed).unwrap();
        assert_eq!(n, 2);
        assert!((speedup - 1.0).abs() < 1e-9);
    }
}
