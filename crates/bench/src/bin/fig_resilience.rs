//! Resilience sweep — performance under injected optical/media faults.
//!
//! Not a paper figure: the paper evaluates the optical network at its
//! designed operating point (BER < 1e-15, Figure 20b) and never asks
//! what happens when that margin erodes. This harness sweeps a
//! [`FaultPlan`] severity scalar from 0 (fault-free) to 1 (heavily
//! degraded substrate) and reports IPC, memory latency and every
//! recovery tally, plus the recovery-stage latency rows at the highest
//! severity. Expected shape: monotonically degrading IPC as
//! retransmissions, re-arbitrations, electrical fallbacks and media
//! retries eat the optical channel's advantage.

use ohm_bench::{f3, print_header, print_row};
use ohm_core::config::SystemConfig;
use ohm_core::fault::FaultPlan;
use ohm_core::system::System;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::workload_by_name;

/// Seed for the sweep's fault plans (fixed: reruns are bit-identical).
const FAULT_SEED: u64 = 0xFA17;

fn main() {
    let severities = [0.0, 0.25, 0.5, 0.75, 1.0];
    let spec = workload_by_name("pagerank").unwrap();
    println!("Resilience: Ohm-WOM planar / pagerank under injected fault severity\n");
    let widths = [8, 8, 8, 8, 8, 8, 8, 8, 8];
    print_header(
        &[
            "severity", "ipc", "lat_ns", "corrupt", "retx", "rearb", "fallback", "media_rt",
            "poisoned",
        ],
        &widths,
    );

    let mut last = None;
    for &s in &severities {
        let cfg = SystemConfig::evaluation()
            .to_builder()
            .faults(Some(FaultPlan::at_severity(FAULT_SEED, s)))
            .build()
            .expect("valid sweep config");
        let mut sys = System::new(&cfg, Platform::OhmWom, OperationalMode::Planar, &spec);
        sys.enable_observability();
        let report = sys.run();
        let f = report.faults.expect("plan armed");
        print_row(
            &[
                format!("{s:.2}"),
                f3(report.ipc),
                format!("{:.1}", report.avg_mem_latency_ns),
                f.corrupted_transfers.to_string(),
                f.retransmissions.to_string(),
                f.rearbitrations.to_string(),
                f.electrical_fallbacks.to_string(),
                f.media_retries.to_string(),
                f.poisoned_lines.to_string(),
            ],
            &widths,
        );
        last = Some(report);
    }

    // The recovery paths as first-class stages at full severity.
    let worst = last.expect("ran at least one severity");
    let summary = worst.stages.expect("observability enabled");
    println!("\nrecovery stages at severity 1.00:");
    for name in [
        "retransmit",
        "rearbitrate",
        "fallback-electrical",
        "media-retry",
    ] {
        if let Some(row) = summary.stages.iter().find(|r| r.name == name) {
            println!(
                "  {:<20} count {:>8}  mean {:>9.1} ns  p99 {:>9.1} ns",
                row.name, row.count, row.mean_ns, row.p99_ns
            );
        }
    }
    println!(
        "\n(severity maps onto Q-derate, MRR fault ppm and XPoint stall ppm \
         together; 0.00 is the fault-free operating point of Figure 20b)"
    );
}
