//! Exports the full evaluation grid (7 platforms × 2 modes × 10 Table II
//! workloads) as CSV on stdout, for plotting with external tools.
//!
//! ```sh
//! cargo run --release -p ohm-bench --bin export_csv > results/grid.csv
//! ```

use ohm_bench::evaluation_grid;
use ohm_core::metrics::SimReport;
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;

fn main() {
    println!(
        "{}",
        SimReport::csv_header()
            .split_whitespace()
            .collect::<String>()
    );
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        let grid = evaluation_grid(&Platform::ALL, mode);
        for row in &grid {
            for report in row {
                println!("{}", report.csv_row());
            }
        }
    }
}
