//! `ohm-client`: command-line client for the `ohm-serve` daemon.
//!
//! ```text
//! ohm-client [--addr HOST:PORT] submit <spec.json|->   # POST the job, print its id
//! ohm-client [--addr HOST:PORT] status <job>           # print the status document
//! ohm-client [--addr HOST:PORT] events <job>           # stream NDJSON events to stdout
//! ohm-client [--addr HOST:PORT] wait <job>             # block until done, print the digest
//! ohm-client [--addr HOST:PORT] run <spec.json|->      # submit + stream + print the digest
//! ohm-client [--addr HOST:PORT] stats                  # print the server stats document
//! ohm-client [--addr HOST:PORT] smoke                  # run a built-in 2x2 smoke job
//! ```
//!
//! `submit`/`run` read the job spec from a file, or from stdin when the
//! argument is `-`. The default address matches the daemon's default
//! (`127.0.0.1:7716`). Exit status is non-zero on HTTP errors, socket
//! failures, and quarantined (digest-less) jobs, so the CI and chaos
//! scripts can gate on it.

use std::io::Read;

use ohm_core::json::parse_json;
use ohm_serve::Client;

const SMOKE_SPEC: &str = r#"{
    "config": {"base": "quick_test", "insts_per_warp": 200, "seed": 3},
    "platforms": ["Ohm-base", "Hetero"],
    "workloads": ["lud", "pagerank"]
}"#;

fn usage() -> ! {
    eprintln!(
        "usage: ohm-client [--addr HOST:PORT] <command>\n\
         commands: submit <spec.json|->   status <job>   events <job>\n\
         \x20         wait <job>            run <spec.json|->   stats   smoke"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("ohm-client: {msg}");
    std::process::exit(1);
}

/// The job spec named by `arg`: a file path, or stdin for `-`.
fn read_spec(arg: &str) -> String {
    if arg == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .unwrap_or_else(|e| fail(format!("stdin: {e}")));
        s
    } else {
        std::fs::read_to_string(arg).unwrap_or_else(|e| fail(format!("{arg}: {e}")))
    }
}

/// Submits `spec` and returns the assigned job id.
fn submit(client: &Client, spec: &str) -> String {
    let resp = client
        .submit(spec)
        .unwrap_or_else(|e| fail(format!("submit: {e}")));
    if resp.status != 200 {
        fail(format!(
            "submit: HTTP {}: {}",
            resp.status,
            resp.body.trim()
        ));
    }
    parse_json(&resp.body)
        .ok()
        .and_then(|doc| doc.get("job").and_then(|v| v.as_str().map(str::to_string)))
        .unwrap_or_else(|| fail(format!("submit: unparsable response {:?}", resp.body)))
}

/// Streams `job`'s events to stdout; returns the terminal digest line's
/// digest, or `None` when the job quarantined.
fn stream(client: &Client, job: &str, echo: bool) -> Option<String> {
    let mut digest = None;
    client
        .stream_events(job, |line| {
            if echo {
                println!("{line}");
            }
            if let Ok(doc) = parse_json(line) {
                if doc.get("done").and_then(|v| v.as_bool()) == Some(true) {
                    digest = doc
                        .get("digest")
                        .and_then(|v| v.as_str().map(str::to_string));
                }
            }
        })
        .unwrap_or_else(|e| fail(format!("events: {e}")));
    digest
}

/// Prints the digest (or exits 1 on a quarantined job).
fn finish(digest: Option<String>) -> ! {
    match digest {
        Some(d) => {
            println!("digest {d}");
            std::process::exit(0)
        }
        None => fail("job quarantined: no digest"),
    }
}

fn main() {
    let mut addr = "127.0.0.1:7716".to_string();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--addr") {
        if args.len() < 2 {
            usage();
        }
        addr = args[1].clone();
        args.drain(..2);
    }
    let client = Client::new(addr);
    let arg = |i: usize| args.get(i).cloned().unwrap_or_else(|| usage());
    match args.first().map(String::as_str) {
        Some("submit") => {
            let id = submit(&client, &read_spec(&arg(1)));
            println!("{id}");
        }
        Some("status") => {
            let resp = client
                .status(&arg(1))
                .unwrap_or_else(|e| fail(format!("status: {e}")));
            if resp.status != 200 {
                fail(format!("HTTP {}: {}", resp.status, resp.body.trim()));
            }
            println!("{}", resp.body.trim_end());
        }
        Some("events") => {
            finish(stream(&client, &arg(1), true));
        }
        Some("wait") => {
            finish(stream(&client, &arg(1), false));
        }
        Some("run") => {
            let id = submit(&client, &read_spec(&arg(1)));
            eprintln!("job {id}");
            finish(stream(&client, &id, true));
        }
        Some("stats") => {
            let resp = client
                .stats()
                .unwrap_or_else(|e| fail(format!("stats: {e}")));
            if resp.status != 200 {
                fail(format!("HTTP {}: {}", resp.status, resp.body.trim()));
            }
            println!("{}", resp.body.trim_end());
        }
        Some("smoke") => {
            let id = submit(&client, SMOKE_SPEC);
            eprintln!("job {id}");
            finish(stream(&client, &id, true));
        }
        _ => usage(),
    }
}
