//! Figure 20b — reliability (bit error rate) of the optical platforms.
//!
//! Paper data points: Ohm-base 7.2e-16; Ohm-WOM auto-read/write 6.1e-16
//! and swap 9.9e-16; Ohm-BW worst path 9.3e-16 — all under the 1e-15
//! requirement after the 1x/2x/4x laser scaling.

use ohm_bench::{print_header, print_row, sci};
use ohm_core::reliability::{platform_ber, worst_ber};
use ohm_hetero::Platform;
use ohm_optic::BerModel;

fn main() {
    println!("Figure 20b: end-to-end BER per platform light path\n");
    let widths = [9, 22, 8, 12, 12, 6];
    print_header(
        &["platform", "path", "laser", "rx power", "BER", "ok"],
        &widths,
    );
    for p in [
        Platform::OhmBase,
        Platform::AutoRw,
        Platform::OhmWom,
        Platform::OhmBw,
    ] {
        for pt in platform_ber(p) {
            print_row(
                &[
                    p.name().to_string(),
                    pt.function.to_string(),
                    format!("{:.0}x", p.laser_power_scale()),
                    format!("{:.3} mW", pt.received_mw),
                    sci(pt.ber),
                    if pt.meets_requirement { "yes" } else { "NO" }.to_string(),
                ],
                &widths,
            );
        }
    }
    println!("\nrequirement: BER < {:.0e}", BerModel::REQUIREMENT);
    for p in [Platform::OhmBase, Platform::OhmWom, Platform::OhmBw] {
        if let Ok(w) = worst_ber(p) {
            println!("worst {}: {}", p.name(), sci(w));
        }
    }
    println!("\n(paper: base 7.2e-16; WOM 6.1e-16 / 9.9e-16; BW worst 9.3e-16)");
}
