//! Figure 16 — IPC of the evaluated GPU platforms, normalised to
//! Ohm-base.
//!
//! Paper shape: Origin well below Hetero (-42%); Hetero ≈ Ohm-base;
//! Auto-rw +9%/+4% (planar/two-level); Ohm-WOM +18%/+16% over Auto-rw;
//! Ohm-BW +4% over Ohm-WOM in planar; Ohm-BW ≈ 88% of Oracle.

use ohm_bench::{bar, evaluation_grid, f3, print_header, print_row};
use ohm_core::runner::{column_geomeans, normalize_ipc};
use ohm_hetero::Platform;
use ohm_optic::OperationalMode;
use ohm_workloads::all_workloads;

fn main() {
    let platforms = Platform::ALL;
    let names: Vec<&str> = platforms.iter().map(|p| p.name()).collect();
    let baseline = 2; // Ohm-base
    for mode in [OperationalMode::Planar, OperationalMode::TwoLevel] {
        println!("Figure 16 ({mode:?}): IPC normalised to Ohm-base\n");
        let widths = [9, 8, 8, 9, 8, 8, 8, 8];
        let mut cols = vec!["app"];
        cols.extend(names.iter());
        print_header(&cols, &widths);

        let grid = evaluation_grid(&platforms, mode);
        let normalized = normalize_ipc(&grid, baseline);
        for (spec, row) in all_workloads().iter().zip(&normalized) {
            let mut cells = vec![spec.name.to_string()];
            cells.extend(row.iter().map(|&v| f3(v)));
            print_row(&cells, &widths);
        }
        let means = column_geomeans(&normalized);
        let mut cells = vec!["geomean".to_string()];
        cells.extend(means.iter().map(|&v| f3(v)));
        print_row(&cells, &widths);

        let max = means.iter().copied().fold(0.0, f64::max);
        println!();
        for (name, &m) in names.iter().zip(&means) {
            println!("{name:>9} {:<40} {}", bar(m, max, 40), f3(m));
        }
        println!(
            "\nspeedups (geomean): Ohm-BW vs Origin {:.2}x (paper ~2.8x), vs Ohm-base {:.2}x (paper ~1.27x), vs Oracle {:.0}% (paper 88%)\n",
            means[5] / means[0],
            means[5],
            100.0 * means[5] / means[6]
        );
    }
}
