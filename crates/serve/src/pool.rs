//! The daemon's work-stealing worker pool.
//!
//! Unlike the scoped fan-out in `ohm_core::par` — which owns a fixed
//! index range and joins at the end of one grid — the daemon needs a
//! *resident* pool that accepts work forever, interleaves cells from
//! concurrent jobs, and lets a re-enqueued (un-parked) task run on any
//! worker. Each worker owns a deque; submissions round-robin across
//! them and an idle worker steals from the longest other deque, so one
//! giant job cannot starve a small one submitted behind it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of pool work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared by submitters and workers.
struct PoolState {
    /// One deque per worker (owner pops the front, thieves the back).
    queues: Vec<VecDeque<Task>>,
    /// Round-robin submission cursor.
    next: usize,
    /// When set, workers drain nothing further and exit.
    shutdown: bool,
}

/// Shared interior of a [`WorkerPool`].
struct Shared {
    state: Mutex<PoolState>,
    available: Condvar,
    /// Workers currently executing a task — the `/stats` occupancy
    /// gauge.
    busy: AtomicUsize,
}

/// A resident pool of worker threads with per-worker deques and work
/// stealing. Dropping the pool shuts it down: queued-but-unstarted
/// tasks are discarded (exactly the semantics of killing a server),
/// running tasks finish, and the threads are joined.
pub struct WorkerPool {
    shared: Arc<Shared>,
    count: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `workers` (clamped to at least 1) resident worker
    /// threads.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                next: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            busy: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ohm-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            shared,
            count: workers,
            workers: Mutex::new(handles),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.count
    }

    /// Workers currently executing a task.
    pub fn busy(&self) -> usize {
        self.shared.busy.load(Ordering::Relaxed)
    }

    /// Enqueues `task` on the next deque round-robin and wakes a
    /// worker. Tasks submitted after shutdown are silently dropped
    /// (the accept loop may race a stopping server).
    pub fn submit(&self, task: Task) {
        let mut state = self.shared.state.lock().expect("pool lock");
        if state.shutdown {
            return;
        }
        let slot = state.next % self.count;
        state.next = state.next.wrapping_add(1);
        state.queues[slot].push_back(task);
        drop(state);
        self.shared.available.notify_all();
    }

    /// Stops the pool: discards queued tasks, lets running tasks
    /// finish, and joins every worker. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
            for q in &mut state.queues {
                q.clear();
            }
        }
        self.shared.available.notify_all();
        let handles: Vec<_> = self.workers.lock().expect("pool lock").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: pop own deque first, steal from the longest other deque
/// otherwise, sleep when everything is empty.
fn worker_loop(shared: &Shared, me: usize) {
    loop {
        let task = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(task) = take_task(&mut state, me) {
                    break task;
                }
                state = shared.available.wait(state).expect("pool lock");
            }
        };
        shared.busy.fetch_add(1, Ordering::Relaxed);
        task();
        shared.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Pops worker `me`'s next task: its own front, else the back of the
/// longest other deque (steal).
fn take_task(state: &mut PoolState, me: usize) -> Option<Task> {
    if let Some(task) = state.queues[me].pop_front() {
        return Some(task);
    }
    let victim = (0..state.queues.len())
        .filter(|&w| w != me)
        .max_by_key(|&w| state.queues[w].len())?;
    state.queues[victim].pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn runs_every_submitted_task_across_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let sum = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for i in 1..=100u64 {
            let sum = Arc::clone(&sum);
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                sum.fetch_add(i, Ordering::Relaxed);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn stealing_drains_an_unbalanced_queue() {
        // One worker pool cannot steal; two workers with all tasks
        // round-robined still finish even if one worker is pinned by a
        // long task — the other steals the backlog.
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        let (block_tx, block_rx) = mpsc::channel::<()>();
        // Pin one worker.
        pool.submit(Box::new(move || {
            block_rx.recv().unwrap();
        }));
        for _ in 0..20 {
            let tx = tx.clone();
            pool.submit(Box::new(move || tx.send(()).unwrap()));
        }
        for _ in 0..20 {
            rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
        }
        block_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_discards_queued_tasks_and_joins() {
        let pool = WorkerPool::new(1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let ran = Arc::new(AtomicU64::new(0));
        pool.submit(Box::new(move || {
            let _ = block_rx.recv();
        }));
        for _ in 0..10 {
            let ran = Arc::clone(&ran);
            pool.submit(Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }));
        }
        // Unblock the running task, then stop; queued tasks may or may
        // not have started, but shutdown must return with all workers
        // joined either way.
        block_tx.send(()).unwrap();
        pool.shutdown();
        pool.submit(Box::new(|| panic!("submitted after shutdown")));
    }
}
