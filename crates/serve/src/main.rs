//! The `ohm-serve` daemon binary.
//!
//! Boots a [`Server`] and blocks until killed. The bound address is
//! printed (flushed) as the first stdout line so wrappers that bind
//! port 0 — the chaos script, CI — can scrape the ephemeral port:
//!
//! ```text
//! ohm-serve [--addr HOST:PORT] [--state-dir DIR] [--workers N]
//!           [--cell-threads N] [--fsync always|on-close]
//! ```
//!
//! Defaults: `127.0.0.1:7716`, state in `.ohm-serve/`, one worker per
//! core, one event-loop thread per cell, `fsync always` (a daemon's
//! cache outlives any one process, so durability is the default).

use std::io::Write;

use ohm_core::checkpoint::FsyncPolicy;
use ohm_serve::{ServeOptions, Server};

fn usage() -> ! {
    eprintln!(
        "usage: ohm-serve [--addr HOST:PORT] [--state-dir DIR] [--workers N] \
         [--cell-threads N] [--fsync always|on-close]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7716".to_string();
    let mut state_dir = ".ohm-serve".to_string();
    let mut opts = ServeOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v,
                None => usage(),
            },
            "--state-dir" => match it.next() {
                Some(v) => state_dir = v,
                None => usage(),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.workers = n,
                _ => usage(),
            },
            "--cell-threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.cell_threads = n,
                _ => usage(),
            },
            "--fsync" => match it.next().as_deref().and_then(FsyncPolicy::parse) {
                Some(p) => opts.fsync = p,
                None => usage(),
            },
            _ => usage(),
        }
    }

    let server = match Server::start(&addr, &state_dir, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ohm-serve: {e}");
            std::process::exit(1);
        }
    };
    println!("ohm-serve listening on {}", server.local_addr());
    std::io::stdout().flush().expect("flush stdout");
    // Serve until killed; resume comes from the state directory, not
    // from anything held here.
    loop {
        std::thread::park();
    }
}
