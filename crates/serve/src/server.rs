//! The `ohm-serve` daemon: endpoints, scheduling, and restart resume.
//!
//! One [`Server`] owns the shared [`ResultCache`], the resident
//! [`WorkerPool`], the job table, and the append-only jobs log that
//! makes submissions durable. The HTTP surface is four endpoints:
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /jobs` | Submit a sweep job (body: [`parse_job`] spec) → `{"job": id}` |
//! | `GET /jobs/<id>` | Status/digest document |
//! | `GET /jobs/<id>/events` | NDJSON stream, one line per resolved cell |
//! | `GET /stats` | Cache hit-rate, quarantines, worker occupancy |
//!
//! # Restart resume
//!
//! Two files in the state directory carry everything: `cache.ohmj` (the
//! result journal) and `jobs.log` (`JOB <id> <escaped-spec>` on submit,
//! `DONE <id>` on completion). After a `SIGKILL`, reopening the state
//! directory replays the cache and re-enqueues every job without a
//! `DONE` line under its original id; cells already journaled resolve
//! as cache hits, the rest re-simulate, and the deterministic engine
//! plus the bit-exact codec make the resumed digest equal the
//! uninterrupted one.

use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use ohm_core::checkpoint::FsyncPolicy;
use ohm_core::json::escape_json;
use ohm_core::par::{budget_cell_threads, default_threads};

use crate::cache::{Claim, ResultCache};
use crate::http::{read_request, write_response, write_stream_header, HttpError, Request};
use crate::job::{parse_job, CellResolution, Job};
use crate::pool::WorkerPool;

/// Tunables for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads in the cell pool (default: all cores).
    pub workers: usize,
    /// Requested intra-cell event-loop threads per simulation; the
    /// effective value is re-budgeted against `workers` via
    /// [`budget_cell_threads`] so the pool never oversubscribes the
    /// machine.
    pub cell_threads: usize,
    /// Durability policy for the result journal and the jobs log.
    /// Daemons default to [`FsyncPolicy::Always`]: the cache outlives
    /// any one process, so a host crash should lose at most the record
    /// being written.
    pub fsync: FsyncPolicy,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: default_threads(),
            cell_threads: 1,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// A parked claim's ticket: which job, which cell.
type Ticket = (Arc<Job>, usize);

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    cache: ResultCache<Ticket>,
    pool: WorkerPool,
    jobs: Mutex<JobTable>,
    cell_threads: usize,
    quarantined: AtomicU64,
    stopping: AtomicBool,
}

/// The job table plus its durable log.
struct JobTable {
    by_id: HashMap<String, Arc<Job>>,
    /// Submission order, for deterministic listings.
    order: Vec<String>,
    log: BufWriter<std::fs::File>,
    fsync: FsyncPolicy,
    next_seq: u64,
}

impl JobTable {
    /// Appends one line to the jobs log, flushed (and synced under
    /// [`FsyncPolicy::Always`]) before returning.
    fn log_line(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.log, "{line}")?;
        self.log.flush()?;
        if self.fsync == FsyncPolicy::Always {
            self.log.get_ref().sync_data()?;
        }
        Ok(())
    }
}

/// A running daemon. Binds on construction; [`Server::stop`] (or drop)
/// shuts down the accept loop and the worker pool.
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), opens the state
    /// directory (created if missing), resumes every unfinished job
    /// from the jobs log, and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Bind/IO failures, or a corrupt state directory (a cache journal
    /// or jobs log the formats reject).
    pub fn start(
        addr: &str,
        state_dir: impl AsRef<Path>,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let state_dir = state_dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&state_dir)?;
        let cache = ResultCache::open(state_dir.join("cache.ohmj"), opts.fsync)
            .map_err(|e| std::io::Error::other(format!("cache journal: {e}")))?;
        let (resume, next_seq) = read_jobs_log(&jobs_log_path(&state_dir))?;
        let log = BufWriter::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(jobs_log_path(&state_dir))?,
        );

        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache,
            pool: WorkerPool::new(opts.workers),
            jobs: Mutex::new(JobTable {
                by_id: HashMap::new(),
                order: Vec::new(),
                log,
                fsync: opts.fsync,
                next_seq,
            }),
            cell_threads: budget_cell_threads(opts.workers, opts.cell_threads),
            quarantined: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
        });

        // Re-enqueue every job that was submitted but never finished —
        // under its original id, so clients can keep polling across the
        // restart. Specs that no longer parse (an incompatible upgrade)
        // are skipped with a warning rather than wedging startup.
        for (id, body) in resume {
            match parse_job(&body) {
                Ok(spec) => {
                    let job = Arc::new(Job::new(id, body, spec));
                    let mut jobs = shared.jobs.lock().expect("jobs lock");
                    jobs.by_id.insert(job.id.clone(), Arc::clone(&job));
                    jobs.order.push(job.id.clone());
                    drop(jobs);
                    enqueue_job(&shared, &job);
                }
                Err(e) => eprintln!("ohm-serve: skipping unresumable job {id}: {e}"),
            }
        }

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ohm-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept loop")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Blocks until job `id` finishes; `None` when the id is unknown,
    /// `Some(digest)` otherwise (digest `None` when a cell
    /// quarantined). Test and embedding convenience — remote clients
    /// poll `GET /jobs/<id>` instead.
    pub fn wait_job(&self, id: &str) -> Option<Option<u64>> {
        let job = {
            let jobs = self.shared.jobs.lock().expect("jobs lock");
            jobs.by_id.get(id).cloned()
        }?;
        Some(job.wait_done())
    }

    /// Stops accepting connections, discards queued work, and joins the
    /// pool — the graceful sibling of `SIGKILL` (a job interrupted here
    /// resumes on the next start exactly like a killed one).
    pub fn stop(&mut self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.pool.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Path of the durable submissions log inside `state_dir`.
fn jobs_log_path(state_dir: &Path) -> PathBuf {
    state_dir.join("jobs.log")
}

/// Replays a jobs log: returns the unfinished jobs (id, spec body) in
/// submission order plus the next free id sequence number. Unparsable
/// lines (a torn tail write) are ignored, like the journal's torn
/// frames.
fn read_jobs_log(path: &Path) -> std::io::Result<(Vec<(String, String)>, u64)> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let mut pending: Vec<(String, String)> = Vec::new();
    let mut max_seq = 0u64;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("JOB ") {
            let Some((id, escaped)) = rest.split_once(' ') else {
                continue;
            };
            let Some(body) = ohm_core::json::unescape_json(escaped) else {
                continue;
            };
            if let Some(seq) = id.strip_prefix('j').and_then(|s| s.parse::<u64>().ok()) {
                max_seq = max_seq.max(seq);
            }
            pending.push((id.to_string(), body));
        } else if let Some(id) = line.strip_prefix("DONE ") {
            pending.retain(|(p, _)| p != id.trim());
        }
    }
    Ok((pending, max_seq + 1))
}

/// Submits every cell of `job` to the pool.
fn enqueue_job(shared: &Arc<Shared>, job: &Arc<Job>) {
    for i in 0..job.spec.total() {
        submit_cell(shared, Arc::clone(job), i);
    }
}

/// Queues one (job, cell) task.
fn submit_cell(shared: &Arc<Shared>, job: Arc<Job>, index: usize) {
    let shared_for_task = Arc::clone(shared);
    shared
        .pool
        .submit(Box::new(move || run_cell(&shared_for_task, &job, index)));
}

/// Resolves one cell: cache hit, parked behind an in-flight owner, or
/// owned simulation. Exactly one `job.record` happens per cell — parked
/// tasks record nothing and are re-submitted by the owner's completion.
fn run_cell(shared: &Arc<Shared>, job: &Arc<Job>, index: usize) {
    let key = job.keys[index];
    match shared.cache.claim(key, (Arc::clone(job), index)) {
        Claim::Hit(report) => {
            finish_cell(shared, job, index, CellResolution::Cached, Some(&report));
        }
        Claim::Parked => {}
        Claim::Owner => {
            let cell = job.spec.cells().swap_remove(index);
            let cell_threads = shared.cell_threads;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cell.run().cell_threads(cell_threads).execute()
            }));
            match result {
                Ok(report) => {
                    let (parked, appended) = shared.cache.complete(key, &report);
                    if let Err(e) = appended {
                        eprintln!("ohm-serve: cache append for {key:016x} failed: {e}");
                    }
                    finish_cell(shared, job, index, CellResolution::Completed, Some(&report));
                    for (pjob, pi) in parked {
                        submit_cell(shared, pjob, pi);
                    }
                }
                Err(_) => {
                    let parked = shared.cache.abandon(key);
                    shared.quarantined.fetch_add(1, Ordering::Relaxed);
                    finish_cell(shared, job, index, CellResolution::Quarantined, None);
                    // The first re-claim becomes the next owner; a
                    // deterministic panic quarantines per job, a
                    // transient one can still converge.
                    for (pjob, pi) in parked {
                        submit_cell(shared, pjob, pi);
                    }
                }
            }
        }
    }
}

/// Records a resolution and, when it finished the job, logs `DONE`.
fn finish_cell(
    shared: &Arc<Shared>,
    job: &Arc<Job>,
    index: usize,
    resolution: CellResolution,
    report: Option<&ohm_core::SimReport>,
) {
    if job.record(index, resolution, report) {
        let mut jobs = shared.jobs.lock().expect("jobs lock");
        if let Err(e) = jobs.log_line(&format!("DONE {}", job.id)) {
            eprintln!("ohm-serve: jobs log: {e}");
        }
    }
}

/// The accept loop: one thread per connection, until stop.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let conn = listener.accept();
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        match conn {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("ohm-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(e) => eprintln!("ohm-serve: accept: {e}"),
        }
    }
}

/// Reads one request and routes it.
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(HttpError::TooLarge) => {
            let _ = write_response(&mut stream, 413, "text/plain", "body too large\n");
            return;
        }
        Err(HttpError::Bad(why)) => {
            let _ = write_response(&mut stream, 400, "text/plain", &format!("{why}\n"));
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    let _ = route(&mut stream, shared, &req);
}

/// Dispatches one request; all responses (including the event stream)
/// go through here.
fn route(stream: &mut TcpStream, shared: &Arc<Shared>, req: &Request) -> std::io::Result<()> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => match submit_job(shared, &req.body) {
            Ok(body) => write_response(stream, 200, "application/json", &body),
            Err(why) => write_response(
                stream,
                400,
                "application/json",
                &format!("{{\"error\":\"{}\"}}", escape_json(&why)),
            ),
        },
        ("GET", ["jobs", id]) => match lookup(shared, id) {
            Some(job) => write_response(stream, 200, "application/json", &job.status_json()),
            None => write_response(stream, 404, "text/plain", "no such job\n"),
        },
        ("GET", ["jobs", id, "events"]) => match lookup(shared, id) {
            Some(job) => stream_events(stream, &job),
            None => write_response(stream, 404, "text/plain", "no such job\n"),
        },
        ("GET", ["stats"]) => write_response(stream, 200, "application/json", &stats_json(shared)),
        ("GET" | "POST", _) => write_response(stream, 404, "text/plain", "no such endpoint\n"),
        _ => write_response(stream, 405, "text/plain", "method not allowed\n"),
    }
}

/// The job for `id`, if submitted (now or before a restart).
fn lookup(shared: &Shared, id: &str) -> Option<Arc<Job>> {
    shared
        .jobs
        .lock()
        .expect("jobs lock")
        .by_id
        .get(id)
        .cloned()
}

/// Validates, persists, registers and enqueues one submission.
fn submit_job(shared: &Arc<Shared>, body: &str) -> Result<String, String> {
    let spec = parse_job(body)?;
    let total = spec.total();
    let job = {
        let mut jobs = shared.jobs.lock().expect("jobs lock");
        let id = format!("j{}", jobs.next_seq);
        jobs.next_seq += 1;
        let job = Arc::new(Job::new(id, body.to_string(), spec));
        // Durable before visible: the JOB line hits the log (synced
        // under `Always`) before any worker can resolve a cell, so a
        // kill at any later point leaves a resumable record.
        jobs.log_line(&format!("JOB {} {}", job.id, escape_json(body)))
            .map_err(|e| format!("jobs log: {e}"))?;
        jobs.by_id.insert(job.id.clone(), Arc::clone(&job));
        jobs.order.push(job.id.clone());
        job
    };
    enqueue_job(shared, &job);
    Ok(format!(
        "{{\"job\":\"{}\",\"cells\":{total}}}",
        escape_json(&job.id)
    ))
}

/// Streams a job's NDJSON event lines as cells land, closing the
/// connection after the terminal `done` line.
fn stream_events(stream: &mut TcpStream, job: &Arc<Job>) -> std::io::Result<()> {
    write_stream_header(stream)?;
    let mut sent = 0usize;
    loop {
        let (lines, done) = job.wait_events(sent);
        sent += lines.len();
        for line in lines {
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
        }
        stream.flush()?;
        if done {
            return Ok(());
        }
    }
}

/// The `GET /stats` document.
fn stats_json(shared: &Shared) -> String {
    let cache = shared.cache.stats();
    let jobs = shared.jobs.lock().expect("jobs lock");
    let (total, done) = jobs.order.iter().fold((0u64, 0u64), |(t, d), id| {
        let finished = jobs.by_id.get(id).map(|j| j.is_done()).unwrap_or(false);
        (t + 1, d + u64::from(finished))
    });
    format!(
        "{{\"workers\":{},\"busy\":{},\"cell_threads\":{},\"jobs\":{total},\"jobs_done\":{done},\
         \"quarantined\":{},\"cache\":{{\"entries\":{},\"hits\":{},\"misses\":{},\"coalesced\":{},\
         \"recovered\":{},\"truncated_bytes\":{}}}}}",
        shared.pool.workers(),
        shared.pool.busy(),
        shared.cell_threads,
        shared.quarantined.load(Ordering::Relaxed),
        shared.cache.len(),
        cache.hits,
        cache.misses,
        cache.coalesced,
        cache.recovered,
        cache.truncated_bytes,
    )
}
