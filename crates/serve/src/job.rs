//! Sweep-job specs and per-job progress state.
//!
//! A job arrives as one JSON document (`POST /jobs`), is validated into
//! a [`JobSpec`] — configuration knobs through
//! [`SystemConfig::builder`], platform/mode/workload names against the
//! simulator's own tables — and expands into row-major
//! [`CellSpec`]s in exactly `GridRun`'s cell order, so a job's digest
//! is directly comparable to a serial grid run of the same grid.
//!
//! ```json
//! {
//!   "config": {"base": "quick_test", "insts_per_warp": 400, "seed": 7},
//!   "platforms": ["Ohm-base", "Hetero"],
//!   "mode": "planar",
//!   "workloads": ["lud", "pagerank"],
//!   "footprint": 67108864
//! }
//! ```

use std::sync::{Condvar, Mutex};

use ohm_core::checkpoint::{grid_digest, report_digest, CellSpec};
use ohm_core::json::{escape_json, parse_json, JsonValue};
use ohm_core::{OperationalMode, Platform, SimReport, SystemConfig};
use ohm_workloads::{workload_by_name, WorkloadSpec};

/// A validated sweep job: the full grid a client asked for.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// System configuration shared by every cell.
    pub config: SystemConfig,
    /// Platform columns, in request order.
    pub platforms: Vec<Platform>,
    /// Operational mode shared by every cell.
    pub mode: OperationalMode,
    /// Workload rows, in request order (footprint already applied).
    pub workloads: Vec<WorkloadSpec>,
}

impl JobSpec {
    /// Number of cells in the grid.
    pub fn total(&self) -> usize {
        self.platforms.len() * self.workloads.len()
    }

    /// The grid's cells in row-major order — cell `i` is platform
    /// `i % platforms.len()` of workload `i / platforms.len()`, the
    /// exact order `GridRun` rows flatten to, which is what makes the
    /// job digest comparable to a serial grid run's.
    pub fn cells(&self) -> Vec<CellSpec> {
        let cols = self.platforms.len();
        (0..self.total())
            .map(|i| {
                CellSpec::new(
                    self.config.clone(),
                    self.platforms[i % cols],
                    self.mode,
                    self.workloads[i / cols],
                )
            })
            .collect()
    }
}

/// Looks up a platform by its display name, case-insensitively.
fn platform_by_name(name: &str) -> Option<Platform> {
    Platform::ALL
        .iter()
        .copied()
        .find(|p| p.name().eq_ignore_ascii_case(name))
}

/// The `u64` payload of `key` in `obj`, or a named error.
fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

/// Parses and validates one job body.
///
/// # Errors
///
/// A human-readable message naming the first invalid field — malformed
/// JSON, an unknown key, an unknown platform/workload/mode name, or a
/// configuration [`SystemConfig::builder`] rejects.
pub fn parse_job(body: &str) -> Result<JobSpec, String> {
    let doc = parse_json(body)?;
    let obj = doc.as_obj().ok_or("job body must be a JSON object")?;

    let mut builder = SystemConfig::quick_test().to_builder();
    let mut footprint: Option<u64> = None;
    let mut platforms: Option<Vec<Platform>> = None;
    let mut mode = OperationalMode::Planar;
    let mut workload_names: Option<Vec<String>> = None;

    for (key, value) in obj {
        match key.as_str() {
            "config" => {
                let members = value.as_obj().ok_or("`config` must be an object")?;
                // `base` selects the starting configuration, so apply
                // it first regardless of its textual position.
                if let Some(base) = value.get("base") {
                    let base = base.as_str().ok_or("`base` must be a string")?;
                    let cfg = match base {
                        "quick_test" => SystemConfig::quick_test(),
                        "evaluation" => SystemConfig::evaluation(),
                        other => {
                            return Err(format!(
                                "unknown base config {other:?} (quick_test, evaluation)"
                            ))
                        }
                    };
                    builder = cfg.to_builder();
                }
                for (k, v) in members {
                    builder = match k.as_str() {
                        "base" => builder, // handled above
                        "sms" => builder.sms(u64_field(v, k)? as usize),
                        "warps_per_sm" => builder.warps_per_sm(u64_field(v, k)? as usize),
                        "insts_per_warp" => builder.insts_per_warp(u64_field(v, k)?),
                        "controllers" => builder.controllers(u64_field(v, k)? as usize),
                        "interleave_bytes" => builder.interleave_bytes(u64_field(v, k)?),
                        "planar_ratio" => builder.planar_ratio(u64_field(v, k)? as usize),
                        "two_level_ratio" => builder.two_level_ratio(u64_field(v, k)? as usize),
                        "hot_threshold" => builder.hot_threshold(u64_field(v, k)? as u32),
                        "seed" => builder.seed(u64_field(v, k)?),
                        other => return Err(format!("unknown config key {other:?}")),
                    };
                }
            }
            "platforms" => {
                let names = value.as_arr().ok_or("`platforms` must be an array")?;
                let mut list = Vec::with_capacity(names.len());
                for n in names {
                    let n = n.as_str().ok_or("platform names must be strings")?;
                    list.push(
                        platform_by_name(n).ok_or_else(|| format!("unknown platform {n:?}"))?,
                    );
                }
                platforms = Some(list);
            }
            "mode" => {
                let m = value.as_str().ok_or("`mode` must be a string")?;
                mode = match m.to_ascii_lowercase().as_str() {
                    "planar" => OperationalMode::Planar,
                    "two-level" | "twolevel" => OperationalMode::TwoLevel,
                    other => return Err(format!("unknown mode {other:?} (planar, two-level)")),
                };
            }
            "workloads" => {
                let names = value.as_arr().ok_or("`workloads` must be an array")?;
                let mut list = Vec::with_capacity(names.len());
                for n in names {
                    let n = n.as_str().ok_or("workload names must be strings")?;
                    // Resolve the footprint after the whole body parses.
                    workload_by_name(n).ok_or_else(|| format!("unknown workload {n:?}"))?;
                    list.push(n.to_string());
                }
                workload_names = Some(list);
            }
            "footprint" => footprint = Some(u64_field(value, key)?),
            other => return Err(format!("unknown job key {other:?}")),
        }
    }

    let platforms = platforms.ok_or("job must name at least one platform")?;
    let names = workload_names.ok_or("job must name at least one workload")?;
    if platforms.is_empty() || names.is_empty() {
        return Err("`platforms` and `workloads` must be non-empty".to_string());
    }
    if let Some(bytes) = footprint {
        builder = builder.footprint(bytes);
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    let workloads = names
        .iter()
        .map(|n| {
            let spec = workload_by_name(n).expect("validated above");
            match footprint {
                Some(bytes) => spec.with_footprint(bytes),
                None => spec,
            }
        })
        .collect();
    Ok(JobSpec {
        config,
        platforms,
        mode,
        workloads,
    })
}

/// How one cell of a job was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellResolution {
    /// Simulated by this job (it owned the cache slot).
    Completed,
    /// Served from the shared result cache (stored earlier, by another
    /// job, or by an in-flight owner this cell coalesced onto).
    Cached,
    /// The simulation panicked; the cell carries no report and the job
    /// has no digest.
    Quarantined,
}

impl CellResolution {
    /// The event-stream rendering of this resolution.
    pub fn name(self) -> &'static str {
        match self {
            CellResolution::Completed => "completed",
            CellResolution::Cached => "cached",
            CellResolution::Quarantined => "quarantined",
        }
    }
}

/// Mutable progress of one job.
struct Progress {
    reports: Vec<Option<SimReport>>,
    resolved: usize,
    quarantined: u64,
    events: Vec<String>,
    done: bool,
    digest: Option<u64>,
}

/// One submitted job: its immutable spec plus concurrently-updated
/// progress (worker threads record cells; connection threads stream
/// events and read status).
pub struct Job {
    /// Server-assigned id (`j1`, `j2`, …), stable across restarts.
    pub id: String,
    /// The raw spec body as submitted — persisted verbatim to the jobs
    /// log so a restarted server re-parses the identical job.
    pub body: String,
    /// The validated spec.
    pub spec: JobSpec,
    /// The cells' content keys, in cell order.
    pub keys: Vec<u64>,
    progress: Mutex<Progress>,
    cv: Condvar,
}

/// Renders an `f64` for an event line: Rust's shortest round-trip form,
/// or `null` for the non-finite values JSON cannot carry.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

impl Job {
    /// A freshly submitted (or restart-recovered) job with no cells
    /// resolved.
    pub fn new(id: String, body: String, spec: JobSpec) -> Job {
        let total = spec.total();
        let keys = spec.cells().iter().map(CellSpec::key).collect();
        Job {
            id,
            body,
            spec,
            keys,
            progress: Mutex::new(Progress {
                reports: vec![None; total],
                resolved: 0,
                quarantined: 0,
                events: Vec::new(),
                done: false,
                digest: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Records cell `index` as resolved, appends its event line, and —
    /// when it was the last cell — finalizes the job: the digest is
    /// [`grid_digest`] over the reports in cell order (defined only
    /// when no cell is quarantined), and a terminal `done` line closes
    /// every event stream. Returns `true` exactly once per job — for
    /// the call that resolved the final cell — so the caller can take
    /// job-completion actions (the daemon's durable `DONE` log line)
    /// without a second lock-and-check race.
    pub fn record(
        &self,
        index: usize,
        resolution: CellResolution,
        report: Option<&SimReport>,
    ) -> bool {
        let cell = &self.spec.cells()[index];
        let mut line = format!(
            "{{\"cell\":{index},\"key\":\"{:016x}\",\"platform\":\"{}\",\"workload\":\"{}\",\"outcome\":\"{}\"",
            self.keys[index],
            escape_json(cell.platform.name()),
            escape_json(cell.workload.name),
            resolution.name(),
        );
        if let Some(r) = report {
            line.push_str(&format!(
                ",\"ipc\":{},\"makespan_ps\":{},\"report_digest\":\"{:016x}\"",
                json_f64(r.ipc),
                r.makespan.as_ps(),
                report_digest(r)
            ));
        }
        line.push('}');

        let mut p = self.progress.lock().expect("job lock");
        debug_assert!(p.reports[index].is_none(), "cell resolved twice");
        p.reports[index] = report.cloned();
        p.resolved += 1;
        if resolution == CellResolution::Quarantined {
            p.quarantined += 1;
        }
        p.events.push(line);
        let finished = p.resolved == self.spec.total();
        if finished {
            p.digest = (p.quarantined == 0)
                .then(|| grid_digest(p.reports.iter().map(|r| r.as_ref().expect("all resolved"))));
            p.done = true;
            let digest = match p.digest {
                Some(d) => format!("\"{d:016x}\""),
                None => "null".to_string(),
            };
            p.events
                .push(format!("{{\"done\":true,\"digest\":{digest}}}"));
        }
        self.cv.notify_all();
        finished
    }

    /// Blocks until the job has more than `from` event lines (or is
    /// done), then returns the new lines and whether the job finished.
    pub fn wait_events(&self, from: usize) -> (Vec<String>, bool) {
        let mut p = self.progress.lock().expect("job lock");
        while p.events.len() <= from && !p.done {
            p = self.cv.wait(p).expect("job lock");
        }
        (p.events[from.min(p.events.len())..].to_vec(), p.done)
    }

    /// Blocks until the job finishes; returns its digest (`None` when
    /// any cell quarantined).
    pub fn wait_done(&self) -> Option<u64> {
        let mut p = self.progress.lock().expect("job lock");
        while !p.done {
            p = self.cv.wait(p).expect("job lock");
        }
        p.digest
    }

    /// Whether every cell is resolved.
    pub fn is_done(&self) -> bool {
        self.progress.lock().expect("job lock").done
    }

    /// Cells quarantined so far.
    pub fn quarantined(&self) -> u64 {
        self.progress.lock().expect("job lock").quarantined
    }

    /// The `GET /jobs/<id>` status document.
    pub fn status_json(&self) -> String {
        let p = self.progress.lock().expect("job lock");
        let digest = match p.digest {
            Some(d) => format!("\"{d:016x}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\"job\":\"{}\",\"state\":\"{}\",\"resolved\":{},\"cells\":{},\"quarantined\":{},\"digest\":{digest}}}",
            escape_json(&self.id),
            if p.done { "done" } else { "running" },
            p.resolved,
            self.spec.total(),
            p.quarantined,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohm_core::checkpoint::cell_key;

    fn smoke_body() -> &'static str {
        r#"{
            "config": {"base": "quick_test", "insts_per_warp": 200, "seed": 11},
            "platforms": ["Ohm-base", "Hetero"],
            "mode": "planar",
            "workloads": ["lud", "pagerank"]
        }"#
    }

    #[test]
    fn parses_a_full_job_spec() {
        let spec = parse_job(smoke_body()).unwrap();
        assert_eq!(spec.platforms, vec![Platform::OhmBase, Platform::Hetero]);
        assert_eq!(spec.mode, OperationalMode::Planar);
        assert_eq!(spec.workloads.len(), 2);
        assert_eq!(spec.config.insts_per_warp, 200);
        assert_eq!(spec.config.seed, 11);
        assert_eq!(spec.total(), 4);
        // Cell order is GridRun's row-major order, keyed identically.
        let cells = spec.cells();
        assert_eq!(cells[1].platform, Platform::Hetero);
        assert_eq!(cells[2].workload.name, "pagerank");
        assert_eq!(
            cells[3].key(),
            cell_key(
                &spec.config,
                Platform::Hetero,
                OperationalMode::Planar,
                &spec.workloads[1]
            )
        );
    }

    #[test]
    fn footprint_applies_to_every_workload() {
        let body =
            r#"{"platforms": ["Oracle"], "workloads": ["lud", "betw"], "footprint": 8388608}"#;
        let spec = parse_job(body).unwrap();
        assert!(spec.workloads.iter().all(|w| w.footprint_bytes == 8 << 20));
    }

    #[test]
    fn rejects_invalid_specs_with_named_errors() {
        for (body, needle) in [
            ("not json", "expected"),
            ("[1,2]", "object"),
            (r#"{"platforms": ["Ohm-base"]}"#, "workload"),
            (r#"{"workloads": ["lud"]}"#, "platform"),
            (
                r#"{"platforms": ["GeForce"], "workloads": ["lud"]}"#,
                "unknown platform",
            ),
            (
                r#"{"platforms": ["Ohm-base"], "workloads": ["doom"]}"#,
                "unknown workload",
            ),
            (
                r#"{"platforms": ["Ohm-base"], "workloads": ["lud"], "mode": "diagonal"}"#,
                "unknown mode",
            ),
            (
                r#"{"platforms": ["Ohm-base"], "workloads": ["lud"], "config": {"warp_drive": 9}}"#,
                "unknown config key",
            ),
            (
                r#"{"platforms": ["Ohm-base"], "workloads": ["lud"], "turbo": true}"#,
                "unknown job key",
            ),
            (
                r#"{"platforms": ["Ohm-base"], "workloads": ["lud"], "config": {"sms": 0}}"#,
                "one sm",
            ),
            (
                r#"{"platforms": ["Ohm-base"], "workloads": ["lud"], "footprint": 3}"#,
                "footprint",
            ),
        ] {
            let err = parse_job(body).expect_err(body);
            assert!(
                err.to_ascii_lowercase().contains(needle),
                "{body}: {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn job_records_events_and_finalizes_digest() {
        let spec = parse_job(smoke_body()).unwrap();
        let reports: Vec<SimReport> = spec.cells().iter().map(|c| c.run().execute()).collect();
        let expected = grid_digest(reports.iter());

        let job = Job::new("j1".into(), smoke_body().into(), spec);
        assert!(!job.is_done());
        for (i, r) in reports.iter().enumerate() {
            let res = if i == 0 {
                CellResolution::Completed
            } else {
                CellResolution::Cached
            };
            job.record(i, res, Some(r));
        }
        assert!(job.is_done());
        assert_eq!(job.wait_done(), Some(expected));
        let (events, done) = job.wait_events(0);
        assert!(done);
        assert_eq!(events.len(), 5, "4 cells + terminal done line");
        assert!(events[0].contains("\"outcome\":\"completed\""));
        assert!(events[1].contains("\"outcome\":\"cached\""));
        assert!(events[4].contains(&format!("\"digest\":\"{expected:016x}\"")));
        assert!(job.status_json().contains("\"state\":\"done\""));
    }

    #[test]
    fn quarantined_cell_voids_the_digest() {
        let spec = parse_job(
            r#"{"platforms": ["Ohm-base"], "workloads": ["lud"], "config": {"insts_per_warp": 50}}"#,
        )
        .unwrap();
        let job = Job::new("j9".into(), String::new(), spec);
        job.record(0, CellResolution::Quarantined, None);
        assert!(job.is_done());
        assert_eq!(job.wait_done(), None);
        assert_eq!(job.quarantined(), 1);
        assert!(job.status_json().contains("\"digest\":null"));
    }
}
