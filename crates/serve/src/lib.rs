//! `ohm-serve`: the Ohm-GPU simulation-as-a-service daemon.
//!
//! A long-lived process that accepts sweep jobs over HTTP/JSON,
//! schedules their cells onto a resident work-stealing worker pool, and
//! streams per-cell results back as NDJSON the moment each cell lands.
//! The centerpiece is a **shared content-addressed result cache**: every
//! result is stored once, keyed by [`CellSpec::key`] — the same
//! canonical content hash `GridRun::checkpoint` uses — and backed by
//! the `ohm-journal v1` format on disk. Overlapping sweeps from
//! concurrent clients therefore share work (the overlap is served
//! cached or coalesced onto an in-flight simulation, with zero
//! re-simulation), and a `SIGKILL`ed server resumes every half-finished
//! job bit-identically on restart, because the engine is deterministic
//! and the journal codec is bit-exact.
//!
//! The stack is deliberately std-only — no async runtime, no HTTP
//! dependency — matching the workspace's offline-build constraint:
//! blocking [`std::net::TcpListener`] accept loop, thread-per-connection
//! framing in [`http`], and the resident [`pool::WorkerPool`] for
//! simulation work, budgeted via `ohm_core::par::budget_cell_threads`.
//!
//! ```no_run
//! use ohm_serve::{Client, ServeOptions, Server};
//!
//! let server = Server::start("127.0.0.1:0", "/tmp/ohm-serve", ServeOptions::default())?;
//! let client = Client::new(server.local_addr().to_string());
//! let resp = client.submit(
//!     r#"{"platforms": ["Ohm-base", "Hetero"], "workloads": ["lud"]}"#,
//! )?;
//! assert_eq!(resp.status, 200);
//! # std::io::Result::Ok(())
//! ```
//!
//! [`CellSpec::key`]: ohm_core::checkpoint::CellSpec::key

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod job;
pub mod pool;
pub mod server;

pub use cache::{CacheStats, Claim, ResultCache};
pub use client::{Client, Response};
pub use job::{parse_job, CellResolution, Job, JobSpec};
pub use server::{ServeOptions, Server};
