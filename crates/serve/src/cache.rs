//! The shared content-addressed result cache.
//!
//! Every simulation result the daemon ever computes is stored once,
//! keyed by [`CellSpec::key`] — the same canonical content hash
//! `GridRun::checkpoint` journals under — and backed by the
//! `ohm-journal v1` format on disk. Three properties follow:
//!
//! * **Cross-job sharing.** Overlapping sweeps from concurrent clients
//!   resolve their overlap to the same keys, so the second job's
//!   overlapping cells are served from memory with zero re-simulation.
//! * **In-flight coalescing.** A cell that is *being* simulated for one
//!   job is not re-simulated for another: the second claim parks until
//!   the owner completes, then everyone reads the one result.
//! * **Restart durability.** The backing journal replays on open, so a
//!   `SIGKILL`ed server restarts with its entire result history and
//!   resumes half-finished jobs bit-identically (torn tails are
//!   truncated by the journal's CRC recovery).
//!
//! [`CellSpec::key`]: ohm_core::checkpoint::CellSpec::key

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ohm_core::checkpoint::{FsyncPolicy, Journal, JournalError};
use ohm_core::SimReport;

/// Outcome of [`ResultCache::claim`] for one cell key.
#[derive(Debug)]
pub enum Claim {
    /// The result is already cached — serve it, simulate nothing.
    /// (Boxed: a `SimReport` dwarfs the other variants.)
    Hit(Box<SimReport>),
    /// The caller now owns this key and must simulate it, then call
    /// [`ResultCache::complete`] (or [`ResultCache::abandon`] on
    /// failure).
    Owner,
    /// Another worker is simulating this key right now; the caller's
    /// ticket was parked and will be returned by the owner's
    /// `complete`/`abandon` for re-claiming.
    Parked,
}

/// Cache counters, snapshot via [`ResultCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Claims served from the cache (journal-recovered or computed
    /// earlier in this process).
    pub hits: u64,
    /// Claims that became owners — each one is exactly one simulation
    /// started.
    pub misses: u64,
    /// Claims parked behind an in-flight owner — overlap coalesced away
    /// without re-simulation.
    pub coalesced: u64,
    /// Verified records recovered from the journal at open.
    pub recovered: usize,
    /// Bytes of torn journal tail discarded at open.
    pub truncated_bytes: u64,
}

/// Mutable cache state: the journal (disk + in-memory index) plus the
/// in-flight ownership table with its parked tickets.
struct State<T> {
    journal: Journal,
    /// Keys currently being simulated, each with the tickets parked
    /// behind its owner.
    inflight: HashMap<u64, Vec<T>>,
}

/// The daemon-wide result cache. `T` is the caller's ticket type —
/// whatever a scheduler needs to re-enqueue a parked claim (the serve
/// scheduler parks whole tasks).
pub struct ResultCache<T> {
    state: Mutex<State<T>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    recovered: usize,
    truncated_bytes: u64,
}

impl<T> ResultCache<T> {
    /// Opens (or creates) the cache backed by the journal at `path`,
    /// recovering every verified record.
    ///
    /// # Errors
    ///
    /// As [`Journal::open_with`] — I/O failures, a non-journal file, or
    /// a journal from an incompatible build.
    pub fn open(
        path: impl AsRef<Path>,
        fsync: FsyncPolicy,
    ) -> Result<ResultCache<T>, JournalError> {
        let journal = Journal::open_with(path, fsync)?;
        let recovered = journal.len();
        let truncated_bytes = journal.truncated_bytes();
        Ok(ResultCache {
            state: Mutex::new(State {
                journal,
                inflight: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            recovered,
            truncated_bytes,
        })
    }

    /// Claims `key`: a cached result, ownership of the simulation, or a
    /// parked ticket — atomically, so exactly one concurrent claimant
    /// of an uncached key becomes the owner and nobody re-simulates a
    /// key that is cached or in flight.
    pub fn claim(&self, key: u64, ticket: T) -> Claim {
        let mut state = self.state.lock().expect("cache lock");
        if let Some(report) = state.journal.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Claim::Hit(Box::new(report.clone()));
        }
        match state.inflight.get_mut(&key) {
            Some(parked) => {
                parked.push(ticket);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Claim::Parked
            }
            None => {
                state.inflight.insert(key, Vec::new());
                self.misses.fetch_add(1, Ordering::Relaxed);
                Claim::Owner
            }
        }
    }

    /// Publishes the owner's result: journals it (honouring the
    /// [`FsyncPolicy`]), releases the key, and returns the parked
    /// tickets so the scheduler can re-enqueue them (their next
    /// [`ResultCache::claim`] is a hit).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the append fails; the result is still
    /// served from memory and the tickets are still returned.
    pub fn complete(&self, key: u64, report: &SimReport) -> (Vec<T>, Result<(), JournalError>) {
        let mut state = self.state.lock().expect("cache lock");
        let appended = state.journal.append(key, report);
        let parked = state.inflight.remove(&key).unwrap_or_default();
        (parked, appended)
    }

    /// Releases `key` without a result (the owner's simulation failed).
    /// Returns the parked tickets; the first to re-claim becomes the
    /// next owner, so a transiently failing cell can still converge
    /// while a deterministically failing one fails per claimant.
    pub fn abandon(&self, key: u64) -> Vec<T> {
        let mut state = self.state.lock().expect("cache lock");
        state.inflight.remove(&key).unwrap_or_default()
    }

    /// The cached report for `key`, if any (no ownership transfer).
    pub fn peek(&self, key: u64) -> Option<SimReport> {
        let state = self.state.lock().expect("cache lock");
        state.journal.get(key).cloned()
    }

    /// Number of distinct results stored.
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock").journal.len()
    }

    /// Whether the cache holds no results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            recovered: self.recovered,
            truncated_bytes: self.truncated_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohm_core::checkpoint::report_digest;
    use ohm_core::runner::Run;
    use ohm_core::SystemConfig;
    use ohm_workloads::workload_by_name;
    use std::path::PathBuf;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ohm-cache-unit-{}-{name}.ohmj", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn small_report() -> SimReport {
        let cfg = SystemConfig::quick_test();
        let spec = workload_by_name("lud").unwrap();
        Run::new(&cfg).workload(&spec).execute()
    }

    #[test]
    fn claim_complete_serves_parked_tickets() {
        let path = tmp_path("park");
        let cache: ResultCache<&str> = ResultCache::open(&path, FsyncPolicy::OnClose).unwrap();
        // First claimant owns the key.
        assert!(matches!(cache.claim(7, "a"), Claim::Owner));
        // Concurrent claimants park instead of re-simulating.
        assert!(matches!(cache.claim(7, "b"), Claim::Parked));
        assert!(matches!(cache.claim(7, "c"), Claim::Parked));
        let report = small_report();
        let (parked, appended) = cache.complete(7, &report);
        appended.unwrap();
        assert_eq!(parked, vec!["b", "c"], "tickets come back for re-queue");
        // Re-claims (and any later claim) hit.
        match cache.claim(7, "b") {
            Claim::Hit(r) => assert_eq!(report_digest(&r), report_digest(&report)),
            other => panic!("expected hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.coalesced, stats.hits), (1, 2, 1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn abandon_hands_ownership_to_a_parked_ticket() {
        let path = tmp_path("abandon");
        let cache: ResultCache<u32> = ResultCache::open(&path, FsyncPolicy::OnClose).unwrap();
        assert!(matches!(cache.claim(9, 1), Claim::Owner));
        assert!(matches!(cache.claim(9, 2), Claim::Parked));
        let parked = cache.abandon(9);
        assert_eq!(parked, vec![2]);
        // The returned ticket's re-claim becomes the new owner.
        assert!(matches!(cache.claim(9, 2), Claim::Owner));
        assert!(cache.is_empty(), "nothing was stored");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn results_survive_reopen() {
        let path = tmp_path("reopen");
        let report = small_report();
        {
            let cache: ResultCache<()> = ResultCache::open(&path, FsyncPolicy::Always).unwrap();
            assert!(matches!(cache.claim(3, ()), Claim::Owner));
            cache.complete(3, &report).1.unwrap();
        }
        let cache: ResultCache<()> = ResultCache::open(&path, FsyncPolicy::OnClose).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().recovered, 1);
        assert_eq!(
            report_digest(&cache.peek(3).unwrap()),
            report_digest(&report),
            "recovered result must be bit-identical"
        );
        let _ = std::fs::remove_file(&path);
    }
}
