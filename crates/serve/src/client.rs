//! A minimal blocking client for the `ohm-serve` HTTP surface.
//!
//! Mirrors the server's deliberately small HTTP/1.1 dialect: one
//! request per connection, `Content-Length` bodies, and NDJSON event
//! streams read line-by-line until the server closes the socket. Used
//! by the `ohm-client` CLI and the integration tests; anything that
//! speaks ordinary HTTP (curl, a browser fetch) works just as well.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A completed exchange: status code and full body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body, decoded as UTF-8.
    pub body: String,
}

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the server at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// Sends one request and reads the complete response.
    ///
    /// # Errors
    ///
    /// Connection or socket failures, or a response that is not HTTP.
    pub fn request(&self, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        let mut stream = TcpStream::connect(&self.addr)?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len(),
        )?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let status = read_status(&mut reader)?;
        skip_headers(&mut reader)?;
        let mut body = String::new();
        reader.read_to_string(&mut body)?;
        Ok(Response { status, body })
    }

    /// Submits a job body (`POST /jobs`).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn submit(&self, spec: &str) -> std::io::Result<Response> {
        self.request("POST", "/jobs", spec)
    }

    /// Fetches a job's status document (`GET /jobs/<id>`).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn status(&self, job: &str) -> std::io::Result<Response> {
        self.request("GET", &format!("/jobs/{job}"), "")
    }

    /// Fetches the server stats document (`GET /stats`).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn stats(&self) -> std::io::Result<Response> {
        self.request("GET", "/stats", "")
    }

    /// Opens a job's NDJSON event stream and calls `on_line` for each
    /// line as it arrives, returning when the server closes the stream
    /// (after the terminal `done` line).
    ///
    /// # Errors
    ///
    /// Connection or socket failures, or a non-200 response (the body
    /// is surfaced in the error message).
    pub fn stream_events(&self, job: &str, mut on_line: impl FnMut(&str)) -> std::io::Result<()> {
        let mut stream = TcpStream::connect(&self.addr)?;
        write!(
            stream,
            "GET /jobs/{job}/events HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr,
        )?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let status = read_status(&mut reader)?;
        skip_headers(&mut reader)?;
        if status != 200 {
            let mut body = String::new();
            reader.read_to_string(&mut body)?;
            return Err(std::io::Error::other(format!(
                "event stream for {job}: HTTP {status}: {}",
                body.trim()
            )));
        }
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Ok(());
            }
            let trimmed = line.trim_end();
            if !trimmed.is_empty() {
                on_line(trimmed);
            }
        }
    }
}

/// Parses the status line (`HTTP/1.1 200 OK`).
fn read_status(reader: &mut BufReader<TcpStream>) -> std::io::Result<u16> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    line.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line {line:?}")))
}

/// Consumes header lines up to the blank separator.
fn skip_headers(reader: &mut BufReader<TcpStream>) -> std::io::Result<()> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
            return Ok(());
        }
    }
}
