//! Minimal std-only HTTP/1.1 framing.
//!
//! The workspace is deliberately offline — no hyper, no tokio — so the
//! daemon speaks just enough HTTP/1.1 over blocking [`TcpStream`]s for
//! its four endpoints: request-line + headers + `Content-Length` body
//! in, status + headers + body (or a streamed NDJSON body with
//! `Connection: close`) out. Every connection is one request; the
//! server closes after responding, which is also what lets the NDJSON
//! event stream signal its end without chunked encoding.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body accepted, in bytes. A sweep-job spec is a few
/// hundred bytes; 1 MiB leaves three orders of magnitude of headroom
/// while bounding what a hostile client can make the server buffer.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request path (`/jobs/j1/events`), query string excluded.
    pub path: String,
    /// Decoded request body (empty when no `Content-Length`).
    pub body: String,
}

/// A problem reading or framing a request.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The request was malformed; the payload is a human-readable
    /// reason suitable for a 400 response.
    Bad(String),
    /// The declared `Content-Length` exceeds [`MAX_BODY_BYTES`].
    TooLarge,
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Bad(why) => write!(f, "malformed request: {why}"),
            HttpError::TooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
        }
    }
}

/// Reads one HTTP/1.1 request off `stream`: request line, headers (only
/// `Content-Length` is interpreted), then exactly that many body bytes.
///
/// # Errors
///
/// [`HttpError::Bad`] on a malformed request line, header, or non-UTF-8
/// body; [`HttpError::TooLarge`] when the declared body exceeds
/// [`MAX_BODY_BYTES`]; [`HttpError::Io`] when the socket fails.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Bad(format!("bad request line {line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported version {version:?}")));
    }
    let method = method.to_string();
    // Strip any query string — the endpoints take parameters in the
    // path or the body.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::Bad(format!("bad header {header:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Bad(format!("bad content-length {value:?}")))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body =
        String::from_utf8(body).map_err(|_| HttpError::Bad("body is not UTF-8".to_string()))?;
    Ok(Request { method, path, body })
}

/// The reason phrase for the status codes the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete response with a `Content-Length` body and closes
/// the exchange (`Connection: close`).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    stream.flush()
}

/// Writes the header block of a streamed NDJSON response. The body has
/// no `Content-Length`; `Connection: close` makes end-of-stream the
/// socket close, so each subsequent line can be written and flushed the
/// moment its cell lands.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_stream_header(stream: &mut TcpStream) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Feeds `raw` to [`read_request`] through a real socket pair.
    fn parse(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_get_and_post() {
        let req = parse("GET /stats?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats", "query string stripped");
        assert_eq!(req.body, "");

        let req = parse(
            "POST /jobs HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "{\"a\":1}");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(parse("garbage\r\n\r\n"), Err(HttpError::Bad(_))));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
        assert!(matches!(
            parse("POST /jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
        assert!(matches!(
            parse(&format!(
                "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )),
            Err(HttpError::TooLarge)
        ));
    }
}
