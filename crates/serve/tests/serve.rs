//! End-to-end daemon tests over real sockets.
//!
//! The acceptance properties from the serve design: overlapping sweeps
//! from concurrent clients share the content-addressed cache with zero
//! re-simulation and bit-identical digests against serial references,
//! and a server restarted over a half-finished state directory resumes
//! the job bit-identically. (The ungraceful-kill variant of the second
//! property is exercised by `tools/serve_chaos.sh`, which `SIGKILL`s a
//! real daemon process; here the half-finished state is constructed
//! directly, which is both deterministic and exactly what a killed
//! server leaves behind.)

use std::path::PathBuf;

use ohm_core::checkpoint::{grid_digest, report_digest, FsyncPolicy, Journal};
use ohm_core::json::{escape_json, parse_json};
use ohm_core::SimReport;
use ohm_serve::{parse_job, Client, JobSpec, ServeOptions, Server};

/// A fresh per-test state directory under the system temp dir.
fn state_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ohm-serve-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn opts(workers: usize) -> ServeOptions {
    ServeOptions {
        workers,
        cell_threads: 1,
        fsync: FsyncPolicy::Always,
    }
}

/// Serial reference: every cell of `spec` simulated in-process, in cell
/// order.
fn serial_reports(spec: &JobSpec) -> Vec<SimReport> {
    spec.cells().iter().map(|c| c.run().execute()).collect()
}

/// Extracts the string field `key` from a JSON response body.
fn json_str(body: &str, key: &str) -> String {
    parse_json(body)
        .unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
        .get(key)
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap_or_else(|| panic!("no string {key:?} in {body:?}"))
}

/// Extracts the number field `key` from a JSON response body.
fn json_u64(body: &str, key: &str) -> u64 {
    parse_json(body)
        .unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
        .get(key)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("no number {key:?} in {body:?}"))
}

const JOB_A: &str = r#"{
    "config": {"base": "quick_test", "insts_per_warp": 200, "seed": 3},
    "platforms": ["Ohm-base", "Hetero"],
    "workloads": ["lud", "pagerank"]
}"#;

/// Shares the Hetero×pagerank cell with [`JOB_A`] (same config).
const JOB_B: &str = r#"{
    "config": {"base": "quick_test", "insts_per_warp": 200, "seed": 3},
    "platforms": ["Hetero", "Oracle"],
    "workloads": ["pagerank", "betw"]
}"#;

#[test]
fn concurrent_overlapping_jobs_share_the_cache() {
    let dir = state_dir("overlap");
    let server = Server::start("127.0.0.1:0", &dir, opts(3)).unwrap();
    let client = Client::new(server.local_addr().to_string());

    // References, computed serially before the daemon touches anything.
    let spec_a = parse_job(JOB_A).unwrap();
    let spec_b = parse_job(JOB_B).unwrap();
    let expect_a = grid_digest(serial_reports(&spec_a).iter());
    let expect_b = grid_digest(serial_reports(&spec_b).iter());
    let unique: std::collections::HashSet<u64> = spec_a
        .cells()
        .iter()
        .chain(spec_b.cells().iter())
        .map(|c| c.key())
        .collect();
    assert_eq!(unique.len(), 7, "4 + 4 cells minus 1 overlapping");

    // Submit both jobs from concurrent clients and stream both event
    // feeds to completion.
    let submit = |body: &str| {
        let resp = client.submit(body).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        json_str(&resp.body, "job")
    };
    let id_a = submit(JOB_A);
    let id_b = submit(JOB_B);
    let streamer = |id: String| {
        let client = client.clone();
        std::thread::spawn(move || {
            let mut lines = Vec::new();
            client
                .stream_events(&id, |l| lines.push(l.to_string()))
                .unwrap();
            lines
        })
    };
    let (events_a, events_b) = (streamer(id_a.clone()), streamer(id_b.clone()));
    let events_a = events_a.join().unwrap();
    let events_b = events_b.join().unwrap();

    // Both digests match the serial references bit-for-bit.
    let digest_a = server.wait_job(&id_a).unwrap().expect("no quarantine");
    let digest_b = server.wait_job(&id_b).unwrap().expect("no quarantine");
    assert_eq!(digest_a, expect_a);
    assert_eq!(digest_b, expect_b);

    // Event streams: one line per cell plus the terminal done line
    // carrying the digest.
    assert_eq!(events_a.len(), 5);
    assert_eq!(events_b.len(), 5);
    assert!(events_a[4].contains(&format!("\"digest\":\"{expect_a:016x}\"")));
    assert!(events_b[4].contains(&format!("\"digest\":\"{expect_b:016x}\"")));

    // Zero re-simulation: exactly one cache miss (= one simulation) per
    // unique cell, however the claims interleaved.
    let stats = client.stats().unwrap();
    assert_eq!(stats.status, 200);
    let misses: u64 = {
        let doc = parse_json(&stats.body).unwrap();
        doc.get("cache")
            .and_then(|c| c.get("misses"))
            .and_then(|v| v.as_u64())
            .unwrap()
    };
    assert_eq!(misses, 7, "one simulation per unique cell: {}", stats.body);

    // A third, fully-overlapping submission is served entirely from the
    // cache: the miss counter does not move and the digest is identical.
    let id_c = submit(JOB_A);
    assert_eq!(server.wait_job(&id_c).unwrap(), Some(expect_a));
    let stats = client.stats().unwrap();
    let doc = parse_json(&stats.body).unwrap();
    let misses = doc
        .get("cache")
        .and_then(|c| c.get("misses"))
        .and_then(|v| v.as_u64())
        .unwrap();
    let hits = doc
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert_eq!(misses, 7, "resubmission simulated nothing");
    assert!(hits >= 4, "resubmission was served cached: {}", stats.body);

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_resumes_a_half_finished_job_bit_identically() {
    let dir = state_dir("resume");
    std::fs::create_dir_all(&dir).unwrap();

    // Construct exactly the state a SIGKILLed server leaves behind: a
    // JOB line with no DONE, and a cache journal holding a strict
    // subset of the job's cells.
    let spec = parse_job(JOB_A).unwrap();
    let cells = spec.cells();
    let reports = serial_reports(&spec);
    let expected = grid_digest(reports.iter());
    {
        let mut journal = Journal::open_with(dir.join("cache.ohmj"), FsyncPolicy::Always).unwrap();
        for i in [0usize, 2] {
            journal.append(cells[i].key(), &reports[i]).unwrap();
        }
    }
    std::fs::write(
        dir.join("jobs.log"),
        format!("JOB j5 {}\n", escape_json(JOB_A)),
    )
    .unwrap();

    // The restarted server resumes j5 under its original id: the two
    // journaled cells come back as cache hits, the other two simulate,
    // and the digest equals the uninterrupted serial reference.
    let server = Server::start("127.0.0.1:0", &dir, opts(2)).unwrap();
    let client = Client::new(server.local_addr().to_string());
    assert_eq!(
        server.wait_job("j5").expect("resumed under original id"),
        Some(expected),
        "resumed digest must be bit-identical"
    );
    let status = client.status("j5").unwrap();
    assert_eq!(status.status, 200);
    assert_eq!(json_str(&status.body, "digest"), format!("{expected:016x}"));
    assert_eq!(json_u64(&status.body, "resolved"), 4);

    let stats = client.stats().unwrap();
    let doc = parse_json(&stats.body).unwrap();
    let cache = doc.get("cache").unwrap();
    assert_eq!(cache.get("recovered").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(cache.get("hits").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(cache.get("misses").and_then(|v| v.as_u64()), Some(2));

    // Ids keep counting from the resumed job, so a restarted server
    // never reuses an id a client may still be polling.
    let resp = client.submit(JOB_B).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(json_str(&resp.body, "job"), "j6");
    server.wait_job("j6").unwrap();

    // The jobs log now carries DONE lines for both, so a further
    // restart resumes nothing but still serves the cache.
    drop(server);
    let server = Server::start("127.0.0.1:0", &dir, opts(2)).unwrap();
    let client = Client::new(server.local_addr().to_string());
    assert_eq!(
        client.status("j5").unwrap().status,
        404,
        "done jobs are not resumed"
    );
    let stats = client.stats().unwrap();
    let doc = parse_json(&stats.body).unwrap();
    assert_eq!(
        doc.get("cache")
            .and_then(|c| c.get("recovered"))
            .and_then(|v| v.as_u64()),
        Some(7),
        "every unique result survived: {}",
        stats.body
    );

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_stop_then_restart_finishes_the_job() {
    let dir = state_dir("stop");
    let body = JOB_B;
    let spec = parse_job(body).unwrap();
    let expected = grid_digest(serial_reports(&spec).iter());

    // Submit and stop immediately: whatever cells were still queued are
    // discarded, exactly like a kill.
    let mut server = Server::start("127.0.0.1:0", &dir, opts(1)).unwrap();
    let client = Client::new(server.local_addr().to_string());
    let resp = client.submit(body).unwrap();
    assert_eq!(resp.status, 200);
    let id = json_str(&resp.body, "job");
    server.stop();
    drop(server);

    // On restart the job either resumes (it was half-finished) or was
    // already done pre-stop; either way the content digest of its cells
    // is the serial reference.
    let server = Server::start("127.0.0.1:0", &dir, opts(2)).unwrap();
    match server.wait_job(&id) {
        Some(digest) => assert_eq!(digest, Some(expected), "resumed digest"),
        None => {
            // Finished before the stop: verify straight from the cache.
            let journal = Journal::open_with(dir.join("cache.ohmj"), FsyncPolicy::OnClose).unwrap();
            let digest = grid_digest(
                spec.cells()
                    .iter()
                    .map(|c| journal.get(c.key()).expect("cell journaled")),
            );
            assert_eq!(digest, expected);
        }
    }

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn http_surface_validates_and_reports_errors() {
    let dir = state_dir("http");
    let server = Server::start("127.0.0.1:0", &dir, opts(1)).unwrap();
    let client = Client::new(server.local_addr().to_string());

    // Invalid specs come back as 400 with the validator's message.
    for (body, needle) in [
        ("{", "expected"),
        (
            r#"{"platforms": ["GeForce"], "workloads": ["lud"]}"#,
            "unknown platform",
        ),
        (
            r#"{"platforms": ["Ohm-base"], "workloads": ["lud"], "config": {"sms": 0}}"#,
            "SM",
        ),
    ] {
        let resp = client.submit(body).unwrap();
        assert_eq!(resp.status, 400, "{body}");
        assert!(
            json_str(&resp.body, "error").contains(needle),
            "{body}: {}",
            resp.body
        );
    }

    // Unknown jobs and routes.
    assert_eq!(client.status("j999").unwrap().status, 404);
    assert_eq!(client.request("GET", "/teapot", "").unwrap().status, 404);
    assert_eq!(
        client.request("DELETE", "/jobs/j1", "").unwrap().status,
        405
    );
    assert!(client
        .stream_events("j999", |_| panic!("no events for unknown job"))
        .is_err());

    // A valid tiny job round-trips end to end through the client API.
    let resp = client
        .submit(r#"{"platforms": ["Ohm-base"], "workloads": ["lud"]}"#)
        .unwrap();
    assert_eq!(resp.status, 200);
    let id = json_str(&resp.body, "job");
    let digest = server.wait_job(&id).unwrap().expect("one healthy cell");
    let cell = &parse_job(r#"{"platforms": ["Ohm-base"], "workloads": ["lud"]}"#)
        .unwrap()
        .cells()[0];
    assert_eq!(digest, grid_digest([cell.run().execute()].iter()));
    let report = cell.run().execute();
    assert!(client.status(&id).unwrap().body.contains(&format!(
        "\"digest\":\"{:016x}\"",
        grid_digest([report.clone()].iter())
    )));
    assert_eq!(report_digest(&report), report_digest(&cell.run().execute()));

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
