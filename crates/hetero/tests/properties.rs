//! Property-based tests for heterogeneous-memory policy invariants.

use ohm_hetero::{
    ConflictDetector, PlanarConfig, PlanarMapping, TwoLevelCache, TwoLevelConfig,
};
use ohm_sim::{Addr, Ps};
use proptest::prelude::*;

proptest! {
    /// The planar remap stays a bijection over the whole logical space
    /// under any access sequence (swaps committed as they trigger).
    #[test]
    fn planar_mapping_stays_bijective(accesses in prop::collection::vec(0u64..(4 * 9), 1..400)) {
        let mut map = PlanarMapping::new(PlanarConfig {
            page_bytes: 4096,
            ratio: 8,
            hot_threshold: 3,
            capacity_bytes: 4 * 9 * 4096,
        });
        for &page in &accesses {
            let addr = Addr::new(page * 4096);
            if let Some(req) = map.record_access(addr) {
                map.commit_swap(&req);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for page in 0..(4 * 9u64) {
            let loc = map.lookup(Addr::new(page * 4096));
            prop_assert!(
                seen.insert((loc.is_dram(), loc.addr().get())),
                "two pages share a physical location"
            );
        }
        // Exactly one DRAM resident per group.
        let dram_count = (0..(4 * 9u64))
            .filter(|&p| map.lookup(Addr::new(p * 4096)).is_dram())
            .count();
        prop_assert_eq!(dram_count, 4);
    }

    /// The most recently accessed line is always resident in the
    /// direct-mapped DRAM cache, and hit/miss counts partition accesses.
    #[test]
    fn two_level_inclusion_of_last_access(
        ops in prop::collection::vec((0u64..256, any::<bool>()), 1..300)
    ) {
        let mut cache = TwoLevelCache::new(TwoLevelConfig {
            dram_bytes: 2048,
            xpoint_bytes: 64 * 1024,
            line_bytes: 256,
        });
        for &(line, w) in &ops {
            let addr = Addr::new(line * 256);
            cache.access(addr, w);
            prop_assert!(cache.contains(addr), "just-accessed line must be cached");
        }
        prop_assert_eq!(cache.hits() + cache.misses(), ops.len() as u64);
        prop_assert!(cache.dirty_evictions() <= cache.misses());
    }

    /// Conflict-detector redirects always point at the registered pair and
    /// preserve the in-page offset; completing releases both pages.
    #[test]
    fn conflict_redirects_roundtrip(
        pairs in prop::collection::vec((0u64..64, 64u64..128, 0u64..4096), 1..50)
    ) {
        let mut cd = ConflictDetector::new(4096);
        let mut ids = Vec::new();
        for &(dram_page, xp_page, offset) in &pairs {
            let dram = Addr::new(dram_page * 4096);
            let xp = Addr::new(xp_page * 4096);
            let id = cd.register(dram, xp, Ps::from_us(1));
            // A redirect for any offset within the page maps to the same
            // offset on the paired device.
            if let Some(r) = cd.redirect_dram(Addr::new(dram_page * 4096 + offset)) {
                prop_assert_eq!(r.paired.offset_in(4096), offset);
                prop_assert_eq!(r.paired.align_down(4096).block_index(4096) * 4096,
                    r.paired.align_down(4096).get());
            } else {
                prop_assert!(false, "registered page must redirect");
            }
            ids.push(id);
        }
        for id in ids {
            cd.complete(id);
        }
        prop_assert_eq!(cd.in_flight(), 0);
        for &(dram_page, xp_page, _) in &pairs {
            prop_assert!(cd.redirect_dram(Addr::new(dram_page * 4096)).is_none());
            prop_assert!(cd.redirect_xpoint(Addr::new(xp_page * 4096)).is_none());
        }
    }
}
