//! Randomized-property tests for heterogeneous-memory policy invariants,
//! driven by the workspace's own deterministic [`SplitMix64`] generator.

use ohm_hetero::{ConflictDetector, PlanarConfig, PlanarMapping, TwoLevelCache, TwoLevelConfig};
use ohm_sim::{Addr, Ps, SplitMix64};

/// The planar remap stays a bijection over the whole logical space
/// under any access sequence (swaps committed as they trigger).
#[test]
fn planar_mapping_stays_bijective() {
    let mut rng = SplitMix64::new(0xB11);
    for _case in 0..32 {
        let n = 1 + rng.next_below(400) as usize;
        let mut map = PlanarMapping::new(PlanarConfig {
            page_bytes: 4096,
            ratio: 8,
            hot_threshold: 3,
            capacity_bytes: 4 * 9 * 4096,
        });
        for _ in 0..n {
            let addr = Addr::new(rng.next_below(4 * 9) * 4096);
            if let Some(req) = map.record_access(addr) {
                map.commit_swap(&req);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for page in 0..(4 * 9u64) {
            let loc = map.lookup(Addr::new(page * 4096));
            assert!(
                seen.insert((loc.is_dram(), loc.addr().get())),
                "two pages share a physical location"
            );
        }
        // Exactly one DRAM resident per group.
        let dram_count = (0..(4 * 9u64))
            .filter(|&p| map.lookup(Addr::new(p * 4096)).is_dram())
            .count();
        assert_eq!(dram_count, 4);
    }
}

/// The most recently accessed line is always resident in the
/// direct-mapped DRAM cache, and hit/miss counts partition accesses.
#[test]
fn two_level_inclusion_of_last_access() {
    let mut rng = SplitMix64::new(0x212);
    for _case in 0..32 {
        let n = 1 + rng.next_below(300) as usize;
        let mut cache = TwoLevelCache::new(TwoLevelConfig {
            dram_bytes: 2048,
            xpoint_bytes: 64 * 1024,
            line_bytes: 256,
        });
        for _ in 0..n {
            let addr = Addr::new(rng.next_below(256) * 256);
            cache.access(addr, rng.chance(0.5));
            assert!(cache.contains(addr), "just-accessed line must be cached");
        }
        assert_eq!(cache.hits() + cache.misses(), n as u64);
        assert!(cache.dirty_evictions() <= cache.misses());
    }
}

/// Conflict-detector redirects always point at the registered pair and
/// preserve the in-page offset; completing releases both pages.
#[test]
fn conflict_redirects_roundtrip() {
    let mut rng = SplitMix64::new(0xC0F);
    for _case in 0..32 {
        let n = 1 + rng.next_below(50) as usize;
        let pairs: Vec<(u64, u64, u64)> = (0..n)
            .map(|_| {
                (
                    rng.next_below(64),
                    64 + rng.next_below(64),
                    rng.next_below(4096),
                )
            })
            .collect();
        let mut cd = ConflictDetector::new(4096);
        let mut ids = Vec::new();
        for &(dram_page, xp_page, offset) in &pairs {
            let dram = Addr::new(dram_page * 4096);
            let xp = Addr::new(xp_page * 4096);
            let id = cd.register(dram, xp, Ps::from_us(1));
            // A redirect for any offset within the page maps to the same
            // offset on the paired device.
            if let Some(r) = cd.redirect_dram(Addr::new(dram_page * 4096 + offset)) {
                assert_eq!(r.paired.offset_in(4096), offset);
                assert_eq!(
                    r.paired.align_down(4096).block_index(4096) * 4096,
                    r.paired.align_down(4096).get()
                );
            } else {
                panic!("registered page must redirect");
            }
            ids.push(id);
        }
        for id in ids {
            cd.complete(id);
        }
        assert_eq!(cd.in_flight(), 0);
        for &(dram_page, xp_page, _) in &pairs {
            assert!(cd.redirect_dram(Addr::new(dram_page * 4096)).is_none());
            assert!(cd.redirect_xpoint(Addr::new(xp_page * 4096)).is_none());
        }
    }
}
