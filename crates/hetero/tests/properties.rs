//! Randomized-property tests for heterogeneous-memory policy invariants,
//! driven by the workspace's own deterministic [`SplitMix64`] generator.

use ohm_hetero::{ConflictDetector, PlanarConfig, PlanarMapping, TwoLevelCache, TwoLevelConfig};
use ohm_sim::{Addr, Ps, SplitMix64};

/// The planar remap stays a bijection over the whole logical space
/// under any access sequence (swaps committed as they trigger).
#[test]
fn planar_mapping_stays_bijective() {
    let mut rng = SplitMix64::new(0xB11);
    for _case in 0..32 {
        let n = 1 + rng.next_below(400) as usize;
        let mut map = PlanarMapping::new(PlanarConfig {
            page_bytes: 4096,
            ratio: 8,
            hot_threshold: 3,
            capacity_bytes: 4 * 9 * 4096,
        });
        for _ in 0..n {
            let addr = Addr::new(rng.next_below(4 * 9) * 4096);
            if let Some(req) = map.record_access(addr) {
                map.commit_swap(&req);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for page in 0..(4 * 9u64) {
            let loc = map.lookup(Addr::new(page * 4096));
            assert!(
                seen.insert((loc.is_dram(), loc.addr().get())),
                "two pages share a physical location"
            );
        }
        // Exactly one DRAM resident per group.
        let dram_count = (0..(4 * 9u64))
            .filter(|&p| map.lookup(Addr::new(p * 4096)).is_dram())
            .count();
        assert_eq!(dram_count, 4);
    }
}

/// The most recently accessed line is always resident in the
/// direct-mapped DRAM cache, and hit/miss counts partition accesses.
#[test]
fn two_level_inclusion_of_last_access() {
    let mut rng = SplitMix64::new(0x212);
    for _case in 0..32 {
        let n = 1 + rng.next_below(300) as usize;
        let mut cache = TwoLevelCache::new(TwoLevelConfig {
            dram_bytes: 2048,
            xpoint_bytes: 64 * 1024,
            line_bytes: 256,
        });
        for _ in 0..n {
            let addr = Addr::new(rng.next_below(256) * 256);
            cache.access(addr, rng.chance(0.5));
            assert!(cache.contains(addr), "just-accessed line must be cached");
        }
        assert_eq!(cache.hits() + cache.misses(), n as u64);
        assert!(cache.dirty_evictions() <= cache.misses());
    }
}

/// Conflict-detector redirects always point at the registered pair and
/// preserve the in-page offset; completing releases both pages.
#[test]
fn conflict_redirects_roundtrip() {
    let mut rng = SplitMix64::new(0xC0F);
    for _case in 0..32 {
        let n = 1 + rng.next_below(50) as usize;
        let pairs: Vec<(u64, u64, u64)> = (0..n)
            .map(|_| {
                (
                    rng.next_below(64),
                    64 + rng.next_below(64),
                    rng.next_below(4096),
                )
            })
            .collect();
        let mut cd = ConflictDetector::new(4096);
        let mut ids = Vec::new();
        for &(dram_page, xp_page, offset) in &pairs {
            let dram = Addr::new(dram_page * 4096);
            let xp = Addr::new(xp_page * 4096);
            let id = cd.register(dram, xp, Ps::from_us(1));
            // A redirect for any offset within the page maps to the same
            // offset on the paired device.
            if let Some(r) = cd.redirect_dram(Addr::new(dram_page * 4096 + offset)) {
                assert_eq!(r.paired.offset_in(4096), offset);
                assert_eq!(
                    r.paired.align_down(4096).block_index(4096) * 4096,
                    r.paired.align_down(4096).get()
                );
            } else {
                panic!("registered page must redirect");
            }
            ids.push(id);
        }
        for id in ids {
            cd.complete(id);
        }
        assert_eq!(cd.in_flight(), 0);
        for &(dram_page, xp_page, _) in &pairs {
            assert!(cd.redirect_dram(Addr::new(dram_page * 4096)).is_none());
            assert!(cd.redirect_xpoint(Addr::new(xp_page * 4096)).is_none());
        }
    }
}

/// A dense mirror of the planar planner's state — the per-group `Vec`
/// layout the sparse implementation replaced. The property below drives
/// both through identical sequences; any divergence in lookups, swap
/// requests or counters means the sparse refactor changed semantics.
struct DensePlanar {
    cfg: PlanarConfig,
    residents: Vec<usize>,
    counters: Vec<u32>,
    subs: Vec<Option<u16>>,
    swaps: u64,
    retired: std::collections::BTreeSet<u64>,
    pinned: u64,
}

impl DensePlanar {
    fn new(cfg: PlanarConfig) -> Self {
        let groups = cfg.groups() as usize;
        let gp = cfg.group_pages();
        let mut subs = vec![None; groups * gp];
        for g in 0..groups {
            for s in 1..gp {
                subs[g * gp + s] = Some((s - 1) as u16);
            }
        }
        DensePlanar {
            cfg,
            residents: vec![0; groups],
            counters: vec![0; groups * gp],
            subs,
            swaps: 0,
            retired: std::collections::BTreeSet::new(),
            pinned: 0,
        }
    }

    fn split(&self, addr: Addr) -> (usize, usize, u64) {
        let page = addr.get() / self.cfg.page_bytes;
        let groups = self.cfg.groups();
        (
            (page % groups) as usize,
            (page / groups) as usize,
            addr.get() % self.cfg.page_bytes,
        )
    }

    /// `(is_dram, physical_addr)` of a logical address.
    fn lookup(&self, addr: Addr) -> (bool, u64) {
        let (group, slot, offset) = self.split(addr);
        if self.residents[group] == slot {
            (true, group as u64 * self.cfg.page_bytes + offset)
        } else {
            let sub = self.subs[group * self.cfg.group_pages() + slot].unwrap() as u64;
            (
                false,
                (group as u64 * self.cfg.ratio as u64 + sub) * self.cfg.page_bytes + offset,
            )
        }
    }

    /// `Some((promote_page, demote_page, dram, xp))` when a swap fires.
    fn record_access(&mut self, addr: Addr) -> Option<(u64, u64, u64, u64)> {
        let (group, slot, _) = self.split(addr);
        let gp = self.cfg.group_pages();
        let idx = group * gp + slot;
        self.counters[idx] += 1;
        if slot == self.residents[group] || self.counters[idx] < self.cfg.hot_threshold {
            return None;
        }
        let sub = self.subs[idx].unwrap();
        for s in 0..gp {
            self.counters[group * gp + s] = 0;
        }
        if self
            .retired
            .contains(&(group as u64 * self.cfg.ratio as u64 + sub as u64))
        {
            self.pinned += 1;
            return None;
        }
        let resident = self.residents[group];
        Some((
            (group * gp + slot) as u64,
            (group * gp + resident) as u64,
            group as u64 * self.cfg.page_bytes,
            (group as u64 * self.cfg.ratio as u64 + sub as u64) * self.cfg.page_bytes,
        ))
    }

    fn commit_swap(&mut self, promote_page: u64, demote_page: u64) {
        let gp = self.cfg.group_pages();
        let group = promote_page as usize / gp;
        let promote_slot = promote_page as usize % gp;
        let demote_slot = demote_page as usize % gp;
        self.subs[group * gp + demote_slot] = self.subs[group * gp + promote_slot];
        self.subs[group * gp + promote_slot] = None;
        self.residents[group] = promote_slot;
        self.swaps += 1;
    }

    fn retire(&mut self, xpoint_addr: Addr) {
        let page = xpoint_addr.get() / self.cfg.page_bytes;
        if page < self.cfg.groups() * self.cfg.ratio as u64 {
            self.retired.insert(page);
        }
    }
}

/// The sparse planner is bit-identical to the dense per-group layout it
/// replaced: same lookups, same swap requests, same counters, under
/// random access/retire sequences at tier-1-sized footprints.
#[test]
fn sparse_planar_matches_dense_oracle() {
    let mut rng = SplitMix64::new(0x5FA);
    for case in 0..16u64 {
        let cfg = PlanarConfig {
            page_bytes: 4096,
            ratio: 8,
            hot_threshold: 2 + (case % 3) as u32,
            capacity_bytes: (3 + case % 5) * 9 * 4096,
        };
        let total_pages = cfg.groups() * cfg.group_pages() as u64;
        let mut sparse = PlanarMapping::new(cfg);
        let mut dense = DensePlanar::new(cfg);
        for _ in 0..4000 {
            let op = rng.next_below(100);
            if op < 2 {
                // Retire a random XPoint device page on both sides.
                let xp = Addr::new(rng.next_below(cfg.xpoint_bytes().max(1)));
                sparse.retire_xpoint_page(xp);
                dense.retire(xp);
                continue;
            }
            let addr = Addr::new(rng.next_below(total_pages * 4096));
            if op < 20 {
                let (is_dram, phys) = dense.lookup(addr);
                let loc = sparse.lookup(addr);
                assert_eq!(loc.is_dram(), is_dram);
                assert_eq!(loc.addr().get(), phys);
            } else {
                let want = dense.record_access(addr);
                let got = sparse.record_access(addr);
                match (got, want) {
                    (None, None) => {}
                    (Some(req), Some((promote, demote, dram, xp))) => {
                        assert_eq!(req.promote_page, promote);
                        assert_eq!(req.demote_page, demote);
                        assert_eq!(req.dram_addr.get(), dram);
                        assert_eq!(req.xpoint_addr.get(), xp);
                        assert_eq!(req.page_bytes, cfg.page_bytes);
                        sparse.commit_swap(&req);
                        dense.commit_swap(promote, demote);
                    }
                    (got, want) => panic!("swap divergence: sparse={got:?} dense={want:?}"),
                }
            }
        }
        assert_eq!(sparse.swaps(), dense.swaps);
        assert_eq!(sparse.pinned_swaps(), dense.pinned);
        assert_eq!(sparse.retired_xpoint_pages(), dense.retired.len() as u64);
        // Full-space sweep: every logical page resolves identically.
        for page in 0..total_pages {
            let addr = Addr::new(page * 4096);
            let (is_dram, phys) = dense.lookup(addr);
            let loc = sparse.lookup(addr);
            assert_eq!(loc.is_dram(), is_dram, "page {page}");
            assert_eq!(loc.addr().get(), phys, "page {page}");
        }
    }
}

/// A dense mirror of the two-level cache's metadata — the
/// one-entry-per-cacheline `Vec` the sparse implementation replaced.
struct DenseTwoLevel {
    cfg: TwoLevelConfig,
    meta: Vec<(u64, bool, bool)>, // (tag, valid, dirty)
    hits: u64,
    misses: u64,
    dirty_evictions: u64,
    retired: std::collections::BTreeSet<u64>,
    bypasses: u64,
}

/// `(kind, dram_addr, xpoint_addr, evict_to)`; kind 0=hit 1=miss 2=bypass.
type DenseOutcome = (u8, u64, u64, Option<u64>);

impl DenseTwoLevel {
    fn new(cfg: TwoLevelConfig) -> Self {
        DenseTwoLevel {
            meta: vec![(0, false, false); cfg.cache_lines() as usize],
            cfg,
            hits: 0,
            misses: 0,
            dirty_evictions: 0,
            retired: std::collections::BTreeSet::new(),
            bypasses: 0,
        }
    }

    fn access(&mut self, addr: Addr, is_write: bool) -> DenseOutcome {
        let lines = self.cfg.cache_lines();
        let line = addr.get() / self.cfg.line_bytes;
        let index = (line % lines) as usize;
        let tag = line / lines;
        let dram = index as u64 * self.cfg.line_bytes;
        let xp = (tag * lines + index as u64) * self.cfg.line_bytes;
        let (rtag, valid, dirty) = self.meta[index];
        if valid && rtag == tag {
            if is_write {
                self.meta[index].2 = true;
            }
            self.hits += 1;
            return (0, dram, 0, None);
        }
        if self.retired.contains(&line)
            || (valid && self.retired.contains(&(rtag * lines + index as u64)))
        {
            self.bypasses += 1;
            return (2, 0, xp, None);
        }
        self.misses += 1;
        let evict_to = (valid && dirty).then(|| {
            self.dirty_evictions += 1;
            (rtag * lines + index as u64) * self.cfg.line_bytes
        });
        self.meta[index] = (tag, true, is_write);
        (1, dram, xp, evict_to)
    }

    fn pinned_lines(&self) -> u64 {
        let lines = self.cfg.cache_lines();
        self.meta
            .iter()
            .enumerate()
            .filter(|(i, (tag, valid, _))| {
                *valid && self.retired.contains(&(tag * lines + *i as u64))
            })
            .count() as u64
    }
}

/// The sparse two-level cache is bit-identical to the dense metadata
/// vector it replaced under random access/retire sequences.
#[test]
fn sparse_two_level_matches_dense_oracle() {
    use ohm_hetero::TwoLevelOutcome;
    let mut rng = SplitMix64::new(0x2CA);
    for case in 0..16u64 {
        let cfg = TwoLevelConfig {
            dram_bytes: (2 + case % 4) * 16 * 256,
            xpoint_bytes: (2 + case % 4) * 16 * 256 * 8,
            line_bytes: 256,
        };
        let mut sparse = TwoLevelCache::new(cfg);
        let mut dense = DenseTwoLevel::new(cfg);
        for _ in 0..4000 {
            let op = rng.next_below(100);
            if op < 2 {
                let xp = Addr::new(rng.next_below(cfg.xpoint_bytes));
                sparse.retire_line(xp);
                let line = xp.get() / cfg.line_bytes;
                dense.retired.insert(line);
                continue;
            }
            let addr = Addr::new(rng.next_below(cfg.xpoint_bytes));
            let is_write = op.is_multiple_of(2);
            let want = dense.access(addr, is_write);
            let got = sparse.access(addr, is_write);
            match (got, want) {
                (TwoLevelOutcome::Hit { dram_addr }, (0, dram, _, _)) => {
                    assert_eq!(dram_addr.get(), dram);
                }
                (
                    TwoLevelOutcome::Miss {
                        dram_addr,
                        xpoint_addr,
                        evict_to,
                    },
                    (1, dram, xp, evict),
                ) => {
                    assert_eq!(dram_addr.get(), dram);
                    assert_eq!(xpoint_addr.get(), xp);
                    assert_eq!(evict_to.map(|a| a.get()), evict);
                }
                (TwoLevelOutcome::Bypass { xpoint_addr }, (2, _, xp, _)) => {
                    assert_eq!(xpoint_addr.get(), xp);
                }
                (got, want) => panic!("outcome divergence: sparse={got:?} dense={want:?}"),
            }
            assert_eq!(sparse.contains(addr), {
                let line = addr.get() / cfg.line_bytes;
                let index = (line % cfg.cache_lines()) as usize;
                let (tag, valid, _) = dense.meta[index];
                valid && tag == line / cfg.cache_lines()
            });
        }
        assert_eq!(sparse.hits(), dense.hits);
        assert_eq!(sparse.misses(), dense.misses);
        assert_eq!(sparse.dirty_evictions(), dense.dirty_evictions);
        assert_eq!(sparse.bypasses(), dense.bypasses);
        assert_eq!(sparse.pinned_lines(), dense.pinned_lines());
    }
}

/// Construction is free and state grows with pages *touched*, not with
/// the configured capacity: a 16 GiB planar space and a 16 GiB DRAM
/// cache both cost zero bytes until accessed and only O(touched) after.
#[test]
fn huge_capacity_state_is_touch_proportional() {
    let mut map = PlanarMapping::new(PlanarConfig {
        capacity_bytes: 16 << 30,
        ..PlanarConfig::default()
    });
    assert_eq!(map.state_bytes(), 0);
    assert_eq!(map.touched_chunks(), 0);
    let mut rng = SplitMix64::new(0xB16);
    for _ in 0..500 {
        let addr = Addr::new(rng.next_below(16 << 30) & !4095);
        if let Some(req) = map.record_access(addr) {
            map.commit_swap(&req);
        }
    }
    // 500 scattered pages → at most 500 page chunks + 500 resident
    // chunks, far under a dense table for 4 Mi pages.
    assert!(map.touched_chunks() <= 1000);
    assert!(map.state_bytes() < 1 << 20, "{} bytes", map.state_bytes());

    let mut cache = TwoLevelCache::new(TwoLevelConfig {
        dram_bytes: 16 << 30,
        xpoint_bytes: 128 << 30,
        line_bytes: 256,
    });
    assert_eq!(cache.state_bytes(), 0);
    assert_eq!(cache.touched_chunks(), 0);
    for _ in 0..500 {
        let addr = Addr::new(rng.next_below(128 << 30) & !255);
        cache.access(addr, true);
    }
    assert!(cache.touched_chunks() <= 500);
    assert!(
        cache.state_bytes() < 1 << 20,
        "{} bytes",
        cache.state_bytes()
    );
}
