//! Migration mechanisms and the platform capability matrix.
//!
//! The seven evaluated GPU platforms (Section VI, "Heterogeneous memory
//! platforms") differ in two dimensions: the channel technology and which
//! migration mechanisms the memory system supports. This module encodes
//! that matrix; the timing consequences are applied by the system model.

/// The mechanism used to move one page/line between DRAM and XPoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrationKind {
    /// The memory controller reads the source and writes the destination
    /// over the (shared) channel: two full transfers that block demand
    /// traffic (`Hetero`, `Ohm-base`).
    ViaController,
    /// DRAM→XPoint leg rides the snarf: the XPoint controller hooks the
    /// MC↔DRAM read off the channel, so no extra transfer is needed
    /// (`Auto-rw` and later platforms).
    AutoReadWrite,
    /// The XPoint controller's DDR sequence generator drives the whole
    /// copy over the memory route after a single SWAP-CMD (`Ohm-WOM` /
    /// `Ohm-BW`, planar mode).
    SwapFunction,
    /// XPoint→DRAM fill rides the memory route while the data route
    /// delivers the miss data to the MC (`Ohm-WOM` / `Ohm-BW`, two-level
    /// mode).
    ReverseWrite,
}

/// Channel technology of a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelTech {
    /// Six 32-bit electrical channels at 15 GHz.
    Electrical,
    /// One optical waveguide with six 16-bit virtual channels at 30 GHz.
    Optical,
}

/// Which migration mechanisms a platform may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationCaps {
    /// Auto-read/write snarf available.
    pub auto_rw: bool,
    /// SWAP-CMD + DDR sequence generator available.
    pub swap: bool,
    /// Reverse-write available.
    pub reverse_write: bool,
    /// Swap-function light sharing uses WOM coding (2/3 data-route
    /// bandwidth while active) rather than half-coupled transmitters.
    pub wom_coding: bool,
}

/// The seven evaluated GPU platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// DRAM-only GPU (24 GB class); overflow pages in from host/SSD.
    Origin,
    /// Electrical-channel heterogeneous memory, controller-driven copies.
    Hetero,
    /// Optical-channel heterogeneous memory, controller-driven copies.
    OhmBase,
    /// Ohm-base + the auto-read/write function.
    AutoRw,
    /// Auto-read/write + reverse-write + swap with WOM coding.
    OhmWom,
    /// Like Ohm-WOM but half-coupled-MRR transmitters (no WOM penalty).
    OhmBw,
    /// All-DRAM memory of the full heterogeneous capacity (upper bound).
    Oracle,
}

impl Platform {
    /// All seven platforms in the paper's presentation order.
    pub const ALL: [Platform; 7] = [
        Platform::Origin,
        Platform::Hetero,
        Platform::OhmBase,
        Platform::AutoRw,
        Platform::OhmWom,
        Platform::OhmBw,
        Platform::Oracle,
    ];

    /// The platform's display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Origin => "Origin",
            Platform::Hetero => "Hetero",
            Platform::OhmBase => "Ohm-base",
            Platform::AutoRw => "Auto-rw",
            Platform::OhmWom => "Ohm-WOM",
            Platform::OhmBw => "Ohm-BW",
            Platform::Oracle => "Oracle",
        }
    }

    /// Channel technology.
    pub fn channel_tech(self) -> ChannelTech {
        match self {
            Platform::Origin | Platform::Hetero => ChannelTech::Electrical,
            _ => ChannelTech::Optical,
        }
    }

    /// Whether the platform has heterogeneous (DRAM+XPoint) memory.
    pub fn is_heterogeneous(self) -> bool {
        !matches!(self, Platform::Origin | Platform::Oracle)
    }

    /// Migration capabilities.
    pub fn migration_caps(self) -> MigrationCaps {
        match self {
            Platform::Origin | Platform::Oracle | Platform::Hetero | Platform::OhmBase => {
                MigrationCaps::default()
            }
            Platform::AutoRw => MigrationCaps {
                auto_rw: true,
                ..MigrationCaps::default()
            },
            Platform::OhmWom => MigrationCaps {
                auto_rw: true,
                swap: true,
                reverse_write: true,
                wom_coding: true,
            },
            Platform::OhmBw => MigrationCaps {
                auto_rw: true,
                swap: true,
                reverse_write: true,
                wom_coding: false,
            },
        }
    }

    /// Laser power multiplier required for the platform's optical
    /// infrastructure (Section VI: 1× base, 2× Auto-rw and Ohm-WOM, 4×
    /// Ohm-BW). Electrical platforms report 0.
    pub fn laser_power_scale(self) -> f64 {
        match self {
            Platform::Origin | Platform::Hetero => 0.0,
            Platform::OhmBase | Platform::Oracle => 1.0,
            Platform::AutoRw | Platform::OhmWom => 2.0,
            Platform::OhmBw => 4.0,
        }
    }

    /// The migration mechanism used for the DRAM→XPoint leg of a planar
    /// swap (or a two-level dirty eviction).
    pub fn demote_mechanism(self) -> MigrationKind {
        let caps = self.migration_caps();
        if caps.swap {
            MigrationKind::SwapFunction
        } else if caps.auto_rw {
            MigrationKind::AutoReadWrite
        } else {
            MigrationKind::ViaController
        }
    }

    /// The migration mechanism used for the XPoint→DRAM leg (planar
    /// promote or two-level fill).
    pub fn promote_mechanism(self) -> MigrationKind {
        let caps = self.migration_caps();
        if caps.swap {
            MigrationKind::SwapFunction
        } else if caps.reverse_write {
            MigrationKind::ReverseWrite
        } else {
            MigrationKind::ViaController
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_platforms() {
        assert_eq!(Platform::ALL.len(), 7);
        let names: Vec<_> = Platform::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["Origin", "Hetero", "Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW", "Oracle"]
        );
    }

    #[test]
    fn channel_tech_assignment() {
        assert_eq!(Platform::Hetero.channel_tech(), ChannelTech::Electrical);
        assert_eq!(Platform::OhmBase.channel_tech(), ChannelTech::Optical);
        assert_eq!(Platform::Oracle.channel_tech(), ChannelTech::Optical);
    }

    #[test]
    fn heterogeneity() {
        assert!(!Platform::Origin.is_heterogeneous());
        assert!(!Platform::Oracle.is_heterogeneous());
        for p in [
            Platform::Hetero,
            Platform::OhmBase,
            Platform::AutoRw,
            Platform::OhmWom,
        ] {
            assert!(p.is_heterogeneous());
        }
    }

    #[test]
    fn capability_matrix_is_monotone() {
        // Each successive Ohm platform only adds capabilities.
        let base = Platform::OhmBase.migration_caps();
        let auto = Platform::AutoRw.migration_caps();
        let wom = Platform::OhmWom.migration_caps();
        assert!(!base.auto_rw && !base.swap && !base.reverse_write);
        assert!(auto.auto_rw && !auto.swap);
        assert!(wom.auto_rw && wom.swap && wom.reverse_write && wom.wom_coding);
        assert!(!Platform::OhmBw.migration_caps().wom_coding);
    }

    #[test]
    fn laser_scaling_matches_section6() {
        assert_eq!(Platform::OhmBase.laser_power_scale(), 1.0);
        assert_eq!(Platform::AutoRw.laser_power_scale(), 2.0);
        assert_eq!(Platform::OhmWom.laser_power_scale(), 2.0);
        assert_eq!(Platform::OhmBw.laser_power_scale(), 4.0);
        assert_eq!(Platform::Hetero.laser_power_scale(), 0.0);
    }

    #[test]
    fn mechanism_selection() {
        assert_eq!(
            Platform::OhmBase.demote_mechanism(),
            MigrationKind::ViaController
        );
        assert_eq!(
            Platform::AutoRw.demote_mechanism(),
            MigrationKind::AutoReadWrite
        );
        assert_eq!(
            Platform::AutoRw.promote_mechanism(),
            MigrationKind::ViaController
        );
        assert_eq!(
            Platform::OhmWom.demote_mechanism(),
            MigrationKind::SwapFunction
        );
        assert_eq!(
            Platform::OhmBw.promote_mechanism(),
            MigrationKind::SwapFunction
        );
    }
}
