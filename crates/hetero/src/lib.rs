//! Heterogeneous-memory management for the Ohm-GPU reproduction.
//!
//! This crate holds the *policy* layer of the Ohm memory system — which
//! data lives where, when it migrates, and which mechanism performs the
//! migration. The timing orchestration (channels, device calendars) lives
//! in `ohm-core`; keeping the policies passive makes them independently
//! testable.
//!
//! * [`planar`] — the planar memory mode (Section III-B): DRAM and XPoint
//!   form one flat address space partitioned into groups of one DRAM page
//!   plus N XPoint pages; hot XPoint pages swap into the group's DRAM slot
//!   under an OS-transparent remap table.
//! * [`two_level`] — the two-level memory mode: DRAM as a direct-mapped
//!   inclusive cache of XPoint with tag/valid/dirty metadata carried in
//!   the ECC bits of each DRAM cacheline (single-access tag check).
//! * [`migration`] — the migration-mechanism capability matrix across the
//!   seven evaluated platforms (via-controller copies, auto-read/write
//!   snarfs, the SWAP-CMD function, reverse-write).
//! * [`conflict`] — the conflict-detection logic that keeps the memory
//!   controller and the XPoint controller from racing on a DRAM bank
//!   while a delegated migration is in flight.

#![warn(missing_docs)]

pub mod conflict;
pub mod migration;
pub mod planar;
pub mod two_level;

pub use conflict::{ConflictDetector, Redirect};
pub use migration::{MigrationCaps, MigrationKind, Platform};
pub use planar::{PlanarConfig, PlanarLocation, PlanarMapping, SwapRequest};
pub use two_level::{TwoLevelCache, TwoLevelConfig, TwoLevelOutcome};
