//! Conflict detection between demand requests and delegated migrations.
//!
//! When the swap function hands a migration to the XPoint controller, the
//! memory controller keeps scheduling demand requests — except those that
//! touch the DRAM page or XPoint page the migration currently owns
//! (Section IV-B: "detect the potential conflicts before scheduling the
//! memory requests and data migration requests"). This module tracks the
//! in-flight migration footprints and answers, for each candidate demand
//! request, whether it must stall and until when.

use ohm_sim::{Addr, FastMap, Ps};

/// Where a request touching an in-migration page should be served from
/// instead (the stale copy on the other device), and until when the
/// migration owns the pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redirect {
    /// Paired physical address on the other device (the data's current
    /// location while the copy is in flight).
    pub paired: Addr,
    /// When the migration releases the pages.
    pub release: Ps,
}

/// Tracks memory regions owned by in-flight delegated migrations.
///
/// # Example
///
/// ```
/// use ohm_hetero::ConflictDetector;
/// use ohm_sim::{Addr, Ps};
///
/// let mut cd = ConflictDetector::new(4096);
/// let id = cd.register(Addr::new(0x0), Addr::new(0x10000), Ps::from_us(2));
/// assert_eq!(cd.stall_until(Addr::new(0x800)), Some(Ps::from_us(2)));
/// assert_eq!(cd.stall_until(Addr::new(0x20000)), None);
/// cd.complete(id);
/// assert_eq!(cd.stall_until(Addr::new(0x800)), None);
/// ```
#[derive(Debug, Clone)]
pub struct ConflictDetector {
    page_bytes: u64,
    /// page index -> (migration id, release time, paired address).
    /// Keyed lookups only (never iterated), so the seedless fast hasher
    /// keeps results identical while staying off the SipHash cost.
    busy_pages: FastMap<u64, (u64, Ps, Addr)>,
    /// migration id -> owned page indices
    migrations: FastMap<u64, Vec<u64>>,
    next_id: u64,
    stalls: u64,
    checks: u64,
}

impl ConflictDetector {
    /// Creates a detector operating at `page_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    pub fn new(page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        ConflictDetector {
            page_bytes,
            busy_pages: FastMap::default(),
            migrations: FastMap::default(),
            next_id: 0,
            stalls: 0,
            checks: 0,
        }
    }

    /// Registers a migration owning the pages containing `dram_addr` and
    /// `xpoint_addr` until `expected_done`. Returns a migration id for
    /// [`ConflictDetector::complete`].
    ///
    /// Addresses are tracked in separate namespaces by tagging the XPoint
    /// page with a high bit, so a DRAM page and an XPoint page with equal
    /// indices do not alias.
    pub fn register(&mut self, dram_addr: Addr, xpoint_addr: Addr, expected_done: Ps) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let dram_page = dram_addr.block_index(self.page_bytes);
        let xp_page = xpoint_addr.block_index(self.page_bytes) | (1 << 62);
        self.busy_pages
            .insert(dram_page, (id, expected_done, xpoint_addr));
        self.busy_pages
            .insert(xp_page, (id, expected_done, dram_addr));
        self.migrations.insert(id, vec![dram_page, xp_page]);
        id
    }

    /// Registers only the DRAM page of a migration (the promote leg):
    /// until `done`, requests to it are served from `paired` on XPoint.
    pub fn register_dram_page(&mut self, dram_addr: Addr, paired: Addr, done: Ps) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let page = dram_addr.block_index(self.page_bytes);
        self.busy_pages.insert(page, (id, done, paired));
        self.migrations.insert(id, vec![page]);
        id
    }

    /// Registers only the XPoint page of a migration (the demote leg):
    /// until `done`, requests to it are served from `paired` in DRAM.
    pub fn register_xpoint_page(&mut self, xpoint_addr: Addr, paired: Addr, done: Ps) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let page = xpoint_addr.block_index(self.page_bytes) | (1 << 62);
        self.busy_pages.insert(page, (id, done, paired));
        self.migrations.insert(id, vec![page]);
        id
    }

    /// If a demand access to the DRAM page containing `addr` conflicts
    /// with an in-flight migration, returns when the page is released.
    pub fn stall_until(&mut self, addr: Addr) -> Option<Ps> {
        self.redirect_dram(addr).map(|r| r.release)
    }

    /// Like [`ConflictDetector::stall_until`] but for an XPoint address.
    pub fn stall_until_xpoint(&mut self, addr: Addr) -> Option<Ps> {
        self.redirect_xpoint(addr).map(|r| r.release)
    }

    /// If the DRAM page containing `addr` is owned by an in-flight
    /// migration, returns where the data currently lives (the paired
    /// XPoint address, offset-adjusted) and when the page is released.
    pub fn redirect_dram(&mut self, addr: Addr) -> Option<Redirect> {
        self.checks += 1;
        let page = addr.block_index(self.page_bytes);
        let hit = self
            .busy_pages
            .get(&page)
            .map(|&(_, release, paired)| Redirect {
                paired: paired.offset(addr.offset_in(self.page_bytes)),
                release,
            });
        if hit.is_some() {
            self.stalls += 1;
        }
        hit
    }

    /// Like [`ConflictDetector::redirect_dram`] for an XPoint address.
    pub fn redirect_xpoint(&mut self, addr: Addr) -> Option<Redirect> {
        self.checks += 1;
        let page = addr.block_index(self.page_bytes) | (1 << 62);
        let hit = self
            .busy_pages
            .get(&page)
            .map(|&(_, release, paired)| Redirect {
                paired: paired.offset(addr.offset_in(self.page_bytes)),
                release,
            });
        if hit.is_some() {
            self.stalls += 1;
        }
        hit
    }

    /// Releases the pages owned by migration `id` (idempotent).
    pub fn complete(&mut self, id: u64) {
        if let Some(pages) = self.migrations.remove(&id) {
            for p in pages {
                // Only remove if still owned by this migration.
                if self
                    .busy_pages
                    .get(&p)
                    .is_some_and(|&(owner, _, _)| owner == id)
                {
                    self.busy_pages.remove(&p);
                }
            }
        }
    }

    /// Migrations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.migrations.len()
    }

    /// Demand requests that were stalled by a conflict.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total conflict checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_stall_complete_cycle() {
        let mut cd = ConflictDetector::new(4096);
        let id = cd.register(Addr::new(4096), Addr::new(8192), Ps::from_us(1));
        assert_eq!(cd.in_flight(), 1);
        assert_eq!(cd.stall_until(Addr::new(4096 + 100)), Some(Ps::from_us(1)));
        assert_eq!(
            cd.stall_until_xpoint(Addr::new(8192 + 5)),
            Some(Ps::from_us(1))
        );
        cd.complete(id);
        assert_eq!(cd.in_flight(), 0);
        assert_eq!(cd.stall_until(Addr::new(4096)), None);
    }

    #[test]
    fn dram_and_xpoint_namespaces_do_not_alias() {
        let mut cd = ConflictDetector::new(4096);
        // Migration owns DRAM page 1 and XPoint page 2.
        cd.register(Addr::new(4096), Addr::new(2 * 4096), Ps::from_us(1));
        // XPoint page 1 (same index as the DRAM page) is free.
        assert_eq!(cd.stall_until_xpoint(Addr::new(4096)), None);
        // DRAM page 2 (same index as the XPoint page) is free.
        assert_eq!(cd.stall_until(Addr::new(2 * 4096)), None);
    }

    #[test]
    fn concurrent_migrations_release_independently() {
        let mut cd = ConflictDetector::new(4096);
        let a = cd.register(Addr::new(0), Addr::new(4096), Ps::from_us(1));
        let b = cd.register(Addr::new(2 * 4096), Addr::new(3 * 4096), Ps::from_us(2));
        cd.complete(a);
        assert_eq!(cd.stall_until(Addr::new(0)), None);
        assert_eq!(cd.stall_until(Addr::new(2 * 4096)), Some(Ps::from_us(2)));
        cd.complete(b);
        assert_eq!(cd.in_flight(), 0);
    }

    #[test]
    fn complete_is_idempotent_and_ownership_checked() {
        let mut cd = ConflictDetector::new(4096);
        let a = cd.register(Addr::new(0), Addr::new(4096), Ps::from_us(1));
        cd.complete(a);
        cd.complete(a); // no panic
                        // A new migration re-claims the same pages; completing the stale id
                        // again must not release them.
        let _b = cd.register(Addr::new(0), Addr::new(4096), Ps::from_us(5));
        cd.complete(a);
        assert_eq!(cd.stall_until(Addr::new(0)), Some(Ps::from_us(5)));
    }

    #[test]
    fn stall_statistics() {
        let mut cd = ConflictDetector::new(4096);
        cd.register(Addr::new(0), Addr::new(4096), Ps::from_us(1));
        cd.stall_until(Addr::new(0));
        cd.stall_until(Addr::new(64 * 4096));
        assert_eq!(cd.checks(), 2);
        assert_eq!(cd.stalls(), 1);
    }
}
