//! Two-level memory mode: DRAM as a direct-mapped inclusive cache of
//! XPoint.
//!
//! The memory controller decodes each request into index/tag/offset and
//! checks the DRAM cacheline whose ECC region carries the line's metadata
//! (1 valid bit, 1 dirty bit, 3–6 tag bits — Section III-B). Because tag
//! and data travel in the same DRAM access, a tag check costs a single
//! DRAM read; a miss additionally fetches the line from XPoint (and
//! writes back the victim if dirty). Direct mapping keeps the tag small
//! enough to fit the ECC bits, which is why the paper rules out higher
//! associativity.
//!
//! # Capacity-aware degradation
//!
//! When the XPoint tier retires a backing line past its spare budget, the
//! cache is told via [`TwoLevelCache::retire_line`]. A retired-backed line
//! must never be *filled* (its only durable copy would land on dead media
//! after eviction): uncached accesses to it **bypass** the cache
//! ([`TwoLevelOutcome::Bypass`]) and are served straight from the
//! best-effort XPoint path, while a copy already cached when the line dies
//! is *pinned* — it hits forever and is never chosen as an eviction
//! victim, so healthy newcomers conflicting with it bypass instead.

use std::collections::BTreeSet;

use ohm_sim::{Addr, SparseState};

/// Geometry of the two-level mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoLevelConfig {
    /// DRAM cache capacity in bytes.
    pub dram_bytes: u64,
    /// Backing XPoint capacity in bytes (Table I ratio 1:64).
    pub xpoint_bytes: u64,
    /// Cacheline (migration) granularity in bytes — one DRAM burst.
    pub line_bytes: u64,
}

impl Default for TwoLevelConfig {
    fn default() -> Self {
        TwoLevelConfig {
            dram_bytes: 6 << 20,
            xpoint_bytes: 384 << 20,
            line_bytes: 256,
        }
    }
}

impl TwoLevelConfig {
    /// Number of DRAM cachelines.
    pub fn cache_lines(&self) -> u64 {
        self.dram_bytes / self.line_bytes
    }

    /// Width of the stored tag in bits (the paper's 3–6 bits for 1:8–1:64
    /// ratios).
    pub fn tag_bits(&self) -> u32 {
        let ratio = (self.xpoint_bytes / self.dram_bytes).max(2);
        64 - (ratio - 1).leading_zeros()
    }

    /// Cacheline metadata width: 1 valid bit + 1 dirty bit + the tag.
    pub fn metadata_bits(&self) -> u32 {
        2 + self.tag_bits()
    }

    /// Whether the metadata fits in the spare ECC bits of the cacheline —
    /// the paper's Section III-B design constraint that makes the
    /// single-access tag check possible. DDR ECC provides 8 spare bits per
    /// 64 data bits; SEC-DED over 64 bits uses 7 + 1 overall parity, but
    /// applying SEC-DED at 128-bit granularity (9 check bits per 16 spare)
    /// frees 7 bits per 16 — comfortably above the 5–8 metadata bits.
    pub fn metadata_fits_ecc(&self) -> bool {
        let spare_per_128bits = 16 - 9; // SEC-DED(128) in a 16-bit budget
        let words_128 = (self.line_bytes * 8 / 128).max(1);
        self.metadata_bits() as u64 <= spare_per_128bits * words_128
    }
}

/// The outcome of a two-level access, with the migration work it implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoLevelOutcome {
    /// The line was present in DRAM; serve from DRAM.
    Hit {
        /// DRAM physical address of the cacheline.
        dram_addr: Addr,
    },
    /// The line missed; it must be fetched from XPoint and filled, and
    /// the victim written back first if dirty.
    Miss {
        /// DRAM physical address of the cacheline slot.
        dram_addr: Addr,
        /// XPoint physical address of the requested line.
        xpoint_addr: Addr,
        /// XPoint address of the dirty victim to evict, if any.
        evict_to: Option<Addr>,
    },
    /// The line is not cached and must not be filled — either its backing
    /// line is retired, or the slot it maps to is pinned by a
    /// retired-backed resident. Serve it directly from XPoint.
    Bypass {
        /// XPoint physical address of the requested line.
        xpoint_addr: Addr,
    },
}

impl TwoLevelOutcome {
    /// True for hits.
    pub fn is_hit(&self) -> bool {
        matches!(self, TwoLevelOutcome::Hit { .. })
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Meta {
    tag: u64,
    valid: bool,
    dirty: bool,
}

/// The direct-mapped DRAM cache state (tags modelled in-controller; the
/// hardware keeps them in DRAM ECC, which is why a tag check costs one
/// DRAM access and no extra channel traffic).
///
/// # Example
///
/// ```
/// use ohm_hetero::{TwoLevelCache, TwoLevelConfig};
/// use ohm_sim::{Addr, SparseState};
///
/// let mut c = TwoLevelCache::new(TwoLevelConfig::default());
/// let first = c.access(Addr::new(0x1000), false);
/// assert!(!first.is_hit());
/// assert!(c.access(Addr::new(0x1000), false).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelCache {
    cfg: TwoLevelConfig,
    /// Per-slot cacheline metadata, materialized only for slots actually
    /// filled — the all-invalid default is exactly an untouched slot, so
    /// an empty cache costs nothing regardless of DRAM capacity.
    meta: SparseState<Meta>,
    hits: u64,
    misses: u64,
    dirty_evictions: u64,
    /// XPoint line indices retired by the memory tier — never fill
    /// targets, never eviction destinations.
    retired: BTreeSet<u64>,
    /// Accesses served around the cache because of retirement.
    bypasses: u64,
}

impl TwoLevelCache {
    /// Creates an empty (all-invalid) DRAM cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero lines, XPoint smaller
    /// than DRAM, or a non-power-of-two line size).
    pub fn new(cfg: TwoLevelConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.cache_lines() > 0, "DRAM cache needs at least one line");
        assert!(
            cfg.xpoint_bytes >= cfg.dram_bytes,
            "XPoint must back the whole DRAM cache"
        );
        TwoLevelCache {
            meta: SparseState::new(cfg.cache_lines()),
            cfg,
            hits: 0,
            misses: 0,
            dirty_evictions: 0,
            retired: BTreeSet::new(),
            bypasses: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &TwoLevelConfig {
        &self.cfg
    }

    fn decode(&self, addr: Addr) -> (usize, u64) {
        let line = addr.block_index(self.cfg.line_bytes);
        let index = (line % self.cfg.cache_lines()) as usize;
        let tag = line / self.cfg.cache_lines();
        (index, tag)
    }

    fn dram_addr(&self, index: usize) -> Addr {
        Addr::from_block(index as u64, self.cfg.line_bytes)
    }

    fn xpoint_addr(&self, index: usize, tag: u64) -> Addr {
        Addr::from_block(
            tag * self.cfg.cache_lines() + index as u64,
            self.cfg.line_bytes,
        )
    }

    /// Accesses the line containing `addr` (an XPoint-space address); on a
    /// miss the line is filled and the previous occupant evicted. Lines
    /// whose backing store is retired bypass the cache instead of filling,
    /// and a cached retired-backed resident is pinned (see the module
    /// docs).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the XPoint capacity.
    pub fn access(&mut self, addr: Addr, is_write: bool) -> TwoLevelOutcome {
        assert!(
            addr.get() < self.cfg.xpoint_bytes,
            "address beyond XPoint capacity"
        );
        let (index, tag) = self.decode(addr);
        let dram_addr = self.dram_addr(index);
        let m = *self.meta.get(index as u64);
        if m.valid && m.tag == tag {
            if is_write {
                self.meta.get_mut(index as u64).dirty = true;
            }
            self.hits += 1;
            return TwoLevelOutcome::Hit { dram_addr };
        }
        if !self.retired.is_empty() {
            let line = addr.block_index(self.cfg.line_bytes);
            let xpoint_addr = self.xpoint_addr(index, tag);
            if self.retired.contains(&line) {
                // Retired-backed and uncached: filling would strand the
                // only durable copy on dead media at eviction time.
                self.bypasses += 1;
                return TwoLevelOutcome::Bypass { xpoint_addr };
            }
            let resident_line = m.tag * self.cfg.cache_lines() + index as u64;
            if m.valid && self.retired.contains(&resident_line) {
                // The slot's resident is pinned (its backing line is
                // dead); the healthy newcomer goes around the cache.
                self.bypasses += 1;
                return TwoLevelOutcome::Bypass { xpoint_addr };
            }
        }
        self.misses += 1;
        let evict_to = (m.valid && m.dirty).then(|| {
            self.dirty_evictions += 1;
            self.xpoint_addr(index, m.tag)
        });
        let xpoint_addr = self.xpoint_addr(index, tag);
        self.meta.set(
            index as u64,
            Meta {
                tag,
                valid: true,
                dirty: is_write,
            },
        );
        TwoLevelOutcome::Miss {
            dram_addr,
            xpoint_addr,
            evict_to,
        }
    }

    /// Whether the line containing `addr` is currently cached.
    pub fn contains(&self, addr: Addr) -> bool {
        let (index, tag) = self.decode(addr);
        let m = self.meta.get(index as u64);
        m.valid && m.tag == tag
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions (each one costs a DRAM read + XPoint write).
    pub fn dirty_evictions(&self) -> u64 {
        self.dirty_evictions
    }

    /// Marks the XPoint line containing `addr` as retired (dead backing
    /// media). Returns `true` if the line was newly retired.
    pub fn retire_line(&mut self, xpoint_addr: Addr) -> bool {
        let line = xpoint_addr.block_index(self.cfg.line_bytes);
        if line >= self.cfg.xpoint_bytes / self.cfg.line_bytes {
            return false; // outside this cache's backing window
        }
        self.retired.insert(line)
    }

    /// XPoint lines retired so far.
    pub fn retired_lines(&self) -> u64 {
        self.retired.len() as u64
    }

    /// Whether the XPoint line containing `addr` is retired.
    pub fn is_line_retired(&self, xpoint_addr: Addr) -> bool {
        self.retired
            .contains(&xpoint_addr.block_index(self.cfg.line_bytes))
    }

    /// Accesses served around the cache because of retirement (uncached
    /// retired-backed lines plus newcomers blocked by pinned residents).
    pub fn bypasses(&self) -> u64 {
        self.bypasses
    }

    /// Cache slots currently pinned by a retired-backed resident.
    /// Only visits materialized slots — untouched slots are invalid by
    /// definition and can never pin anything.
    pub fn pinned_lines(&self) -> u64 {
        self.meta
            .iter_touched()
            .filter(|(index, m)| {
                m.valid
                    && self
                        .retired
                        .contains(&(m.tag * self.cfg.cache_lines() + index))
            })
            .count() as u64
    }

    /// Heap bytes held by the materialized cache metadata. Scales with
    /// slots actually filled, not with the configured DRAM capacity.
    pub fn state_bytes(&self) -> usize {
        self.meta.heap_bytes() + self.retired.len() * 3 * std::mem::size_of::<u64>()
    }

    /// Number of sparse metadata chunks materialized so far (diagnostic
    /// for bounded-memory tests).
    pub fn touched_chunks(&self) -> usize {
        self.meta.touched_chunks()
    }

    /// Fraction of the backing XPoint still usable (retired lines
    /// excluded).
    pub fn usable_xpoint_fraction(&self) -> f64 {
        let total = self.cfg.xpoint_bytes / self.cfg.line_bytes;
        1.0 - self.retired.len() as f64 / total as f64
    }

    /// Hit rate so far (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TwoLevelCache {
        // 4 lines of 256 B DRAM backing 64 lines of XPoint.
        TwoLevelCache::new(TwoLevelConfig {
            dram_bytes: 1024,
            xpoint_bytes: 16 * 1024,
            line_bytes: 256,
        })
    }

    #[test]
    fn tag_bits_match_ratio() {
        // 1:64 ratio -> 6 tag bits, the paper's upper bound.
        let c = TwoLevelConfig {
            dram_bytes: 6 << 20,
            xpoint_bytes: 384 << 20,
            line_bytes: 256,
        };
        assert_eq!(c.tag_bits(), 6);
        // 1:8 -> 3 bits, the paper's lower bound.
        let c8 = TwoLevelConfig {
            dram_bytes: 1 << 20,
            xpoint_bytes: 8 << 20,
            line_bytes: 256,
        };
        assert_eq!(c8.tag_bits(), 3);
    }

    #[test]
    fn metadata_fits_the_ecc_region_at_paper_ratios() {
        for (dram, xp) in [(6u64 << 20, 48u64 << 20), (6 << 20, 384 << 20)] {
            let c = TwoLevelConfig {
                dram_bytes: dram,
                xpoint_bytes: xp,
                line_bytes: 256,
            };
            assert!(c.metadata_bits() <= 8, "paper: 1+1+3..6 bits");
            assert!(c.metadata_fits_ecc(), "ratio {}:{}", dram >> 20, xp >> 20);
        }
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = tiny();
        let o = c.access(Addr::new(0), false);
        match o {
            TwoLevelOutcome::Miss {
                dram_addr,
                xpoint_addr,
                evict_to,
            } => {
                assert_eq!(dram_addr, Addr::new(0));
                assert_eq!(xpoint_addr, Addr::new(0));
                assert_eq!(evict_to, None);
            }
            _ => panic!("expected miss"),
        }
        assert!(c.access(Addr::new(128), false).is_hit()); // same line
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = tiny();
        // Lines 0 and 4 map to index 0 (4 cache lines).
        c.access(Addr::new(0), true); // dirty
        let o = c.access(Addr::new(4 * 256), false);
        match o {
            TwoLevelOutcome::Miss { evict_to, .. } => {
                assert_eq!(evict_to, Some(Addr::new(0)), "dirty victim must evict");
            }
            _ => panic!("expected miss"),
        }
        assert!(!c.contains(Addr::new(0)));
        assert!(c.contains(Addr::new(4 * 256)));
        assert_eq!(c.dirty_evictions(), 1);
    }

    #[test]
    fn clean_victim_needs_no_eviction() {
        let mut c = tiny();
        c.access(Addr::new(0), false);
        match c.access(Addr::new(4 * 256), false) {
            TwoLevelOutcome::Miss { evict_to, .. } => assert_eq!(evict_to, None),
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn write_hit_dirties_line() {
        let mut c = tiny();
        c.access(Addr::new(0), false);
        c.access(Addr::new(0), true); // hit, dirty
        match c.access(Addr::new(4 * 256), false) {
            TwoLevelOutcome::Miss { evict_to, .. } => assert_eq!(evict_to, Some(Addr::new(0))),
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn xpoint_addresses_roundtrip() {
        let mut c = tiny();
        // Fill index 2 with tag 3: XPoint line 3*4+2 = 14.
        let addr = Addr::new(14 * 256);
        match c.access(addr, false) {
            TwoLevelOutcome::Miss {
                dram_addr,
                xpoint_addr,
                ..
            } => {
                assert_eq!(dram_addr, Addr::new(2 * 256));
                assert_eq!(xpoint_addr, addr);
            }
            _ => panic!("expected miss"),
        }
    }

    #[test]
    #[should_panic(expected = "beyond XPoint capacity")]
    fn capacity_enforced() {
        let mut c = tiny();
        let _ = c.access(Addr::new(16 * 1024), false);
    }

    #[test]
    fn retired_line_bypasses_instead_of_filling() {
        let mut c = tiny();
        let dead = Addr::new(8 * 256); // maps to index 0, tag 2
        assert!(c.retire_line(dead));
        assert!(!c.retire_line(dead), "idempotent");
        assert!(c.is_line_retired(dead));
        match c.access(dead, false) {
            TwoLevelOutcome::Bypass { xpoint_addr } => assert_eq!(xpoint_addr, dead),
            o => panic!("expected bypass, got {o:?}"),
        }
        assert!(!c.contains(dead), "bypass must not fill");
        assert_eq!(c.bypasses(), 1);
        assert_eq!(c.misses(), 0);
        // The slot stays free for healthy lines.
        assert!(!c.access(Addr::new(0), false).is_hit());
        assert!(c.access(Addr::new(0), false).is_hit());
    }

    #[test]
    fn cached_copy_of_retired_line_is_pinned() {
        let mut c = tiny();
        let line = Addr::new(4 * 256); // index 0, tag 1
        c.access(line, true); // fill dirty
        assert!(c.retire_line(line));
        assert_eq!(c.pinned_lines(), 1);
        // Still hits: the DRAM copy is the only good one left.
        assert!(c.access(line, false).is_hit());
        // A conflicting healthy line must not evict it.
        let rival = Addr::new(0); // index 0, tag 0
        match c.access(rival, false) {
            TwoLevelOutcome::Bypass { xpoint_addr } => assert_eq!(xpoint_addr, rival),
            o => panic!("expected bypass, got {o:?}"),
        }
        assert!(c.contains(line), "pinned resident survived");
        assert!(!c.contains(rival));
        // Unrelated indices are unaffected.
        assert!(!c.access(Addr::new(256), false).is_hit());
        assert!(c.access(Addr::new(256), false).is_hit());
    }

    #[test]
    fn usable_fraction_tracks_retirement() {
        let mut c = tiny();
        assert_eq!(c.usable_xpoint_fraction(), 1.0);
        for l in 0..16u64 {
            assert!(c.retire_line(Addr::new(l * 256)));
        }
        assert_eq!(c.retired_lines(), 16);
        assert!((c.usable_xpoint_fraction() - 0.75).abs() < 1e-12);
        // Beyond the backing window: rejected.
        assert!(!c.retire_line(Addr::new(16 * 1024)));
    }
}
