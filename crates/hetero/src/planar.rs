//! Planar memory mode: a flat DRAM+XPoint address space with
//! OS-transparent hot-page swapping.
//!
//! The entire memory space is split into *groups*, each containing one
//! DRAM page and `ratio` XPoint pages (Table I ratio 1:8). The memory
//! controller keeps a simplified remap table recording which logical page
//! of each group currently occupies the group's DRAM slot. When an
//! XPoint-resident page collects enough accesses it is declared hot and
//! swapped with the group's current DRAM resident (Figure 7a) — the data
//! movement whose cost the paper's dual routes eliminate.
//!
//! # Capacity-aware degradation
//!
//! When the XPoint controller retires a device page past its spare budget,
//! the planner is told via [`PlanarMapping::retire_xpoint_page`]. Retired
//! pages are excluded as swap *targets*: a hot page would otherwise be
//! demoted onto dead media. The swap is suppressed, the DRAM resident is
//! *pinned*, and the shrunken usable ratio is reported through
//! [`PlanarMapping::usable_xpoint_fraction`] /
//! [`PlanarMapping::effective_ratio`].

use std::collections::BTreeSet;

use ohm_sim::{Addr, FastDiv, SparseState};

/// Configuration of the planar mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanarConfig {
    /// Migration/page granularity in bytes (power of two).
    pub page_bytes: u64,
    /// XPoint pages per DRAM page in each group (Table I: 8).
    pub ratio: usize,
    /// Accesses to an XPoint-resident page before it is declared hot.
    pub hot_threshold: u32,
    /// Total logical capacity in bytes (must be a whole number of groups).
    pub capacity_bytes: u64,
}

impl Default for PlanarConfig {
    fn default() -> Self {
        PlanarConfig {
            page_bytes: 4096,
            ratio: 8,
            hot_threshold: 16,
            capacity_bytes: 288 << 20, // 64 groups/MB at 4 KB pages, scaled
        }
    }
}

impl PlanarConfig {
    /// Pages per group (DRAM slot + XPoint slots).
    pub fn group_pages(&self) -> usize {
        self.ratio + 1
    }

    /// Number of groups implied by the capacity.
    pub fn groups(&self) -> u64 {
        self.capacity_bytes / (self.page_bytes * self.group_pages() as u64)
    }

    /// DRAM capacity implied by the geometry.
    pub fn dram_bytes(&self) -> u64 {
        self.groups() * self.page_bytes
    }

    /// XPoint capacity implied by the geometry.
    pub fn xpoint_bytes(&self) -> u64 {
        self.groups() * self.ratio as u64 * self.page_bytes
    }
}

/// Where a logical address currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanarLocation {
    /// In DRAM, at the given DRAM physical address.
    Dram(Addr),
    /// In XPoint, at the given XPoint physical address.
    XPoint(Addr),
}

impl PlanarLocation {
    /// True when the location is DRAM.
    pub fn is_dram(self) -> bool {
        matches!(self, PlanarLocation::Dram(_))
    }

    /// The physical address regardless of device.
    pub fn addr(self) -> Addr {
        match self {
            PlanarLocation::Dram(a) | PlanarLocation::XPoint(a) => a,
        }
    }
}

/// A pending hot-page swap decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapRequest {
    /// Group being reorganised.
    pub group: u64,
    /// Group-major page id (`group * group_pages + slot`) moving into DRAM.
    pub promote_page: u64,
    /// Group-major page id being demoted to XPoint.
    pub demote_page: u64,
    /// DRAM physical page address involved in the swap.
    pub dram_addr: Addr,
    /// XPoint physical page address involved in the swap.
    pub xpoint_addr: Addr,
    /// Bytes exchanged in each direction.
    pub page_bytes: u64,
}

/// Per-page planner state, stored sparsely at group-major page index
/// (`group * group_pages + slot`). The all-zero default must describe
/// the initial identity placement so untouched groups cost nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct PageState {
    /// Hotness counter for the page.
    counter: u32,
    /// Encoded XPoint placement of the page — see [`decode_sub`]:
    /// `0` = initial placement (slot 0 in DRAM, slot `s` in sub-slot
    /// `s - 1`), `1` = in DRAM, `v >= 2` = XPoint sub-slot `v - 2`.
    slot_enc: u32,
}

/// Decodes a [`PageState::slot_enc`] for in-group `slot`: `None` means
/// the page occupies the group's DRAM slot, `Some(sub)` its XPoint
/// sub-slot.
#[inline]
fn decode_sub(slot: usize, enc: u32) -> Option<u16> {
    match enc {
        0 => {
            if slot == 0 {
                None
            } else {
                Some((slot - 1) as u16)
            }
        }
        1 => None,
        v => Some((v - 2) as u16),
    }
}

/// Inverse of [`decode_sub`] (always the explicit form, never `0`).
#[inline]
fn encode_sub(sub: Option<u16>) -> u32 {
    match sub {
        None => 1,
        Some(s) => s as u32 + 2,
    }
}

/// The planar-mode remap table and hotness tracker.
///
/// # Example
///
/// ```
/// use ohm_hetero::{PlanarConfig, PlanarMapping};
/// use ohm_sim::Addr;
///
/// let mut map = PlanarMapping::new(PlanarConfig {
///     capacity_bytes: 9 * 4096,
///     ..PlanarConfig::default()
/// });
/// // Page 0 of each group starts in DRAM.
/// assert!(map.lookup(Addr::new(0)).is_dram());
/// assert!(!map.lookup(Addr::new(4096)).is_dram());
/// ```
#[derive(Debug, Clone)]
pub struct PlanarMapping {
    cfg: PlanarConfig,
    /// Current DRAM-resident slot per group (default `0`: the initial
    /// identity placement). Materialized only for groups that swapped.
    residents: SparseState<u16>,
    /// Hotness counters and placement per group-major page, materialized
    /// only for pages actually accessed. Untouched pages are in their
    /// initial placement with a zero counter by construction.
    pages: SparseState<PageState>,
    /// Reciprocal of the group count — `split` runs on every access and
    /// the group count is rarely a power of two (ratio + 1 slots).
    groups_div: FastDiv,
    swaps: u64,
    /// Device page indices (XPoint physical page number) retired by the
    /// memory tier — never valid swap targets.
    retired_xp_pages: BTreeSet<u64>,
    /// Hot-page promotions suppressed because the demotion target page was
    /// retired (the DRAM resident stays pinned).
    pinned_swaps: u64,
}

impl PlanarMapping {
    /// Creates the initial identity mapping (slot 0 of each group in DRAM).
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero groups or a non-power-of-two
    /// page size.
    pub fn new(cfg: PlanarConfig) -> Self {
        assert!(
            cfg.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(cfg.ratio > 0, "need at least one XPoint page per group");
        let n = cfg.groups();
        assert!(n > 0, "capacity too small for one group");
        // The sparse default (resident slot 0, counter 0, initial
        // placement) *is* the identity mapping, so construction
        // allocates nothing regardless of capacity.
        PlanarMapping {
            residents: SparseState::new(n),
            pages: SparseState::new(n * cfg.group_pages() as u64),
            cfg,
            groups_div: FastDiv::new(n),
            swaps: 0,
            retired_xp_pages: BTreeSet::new(),
            pinned_swaps: 0,
        }
    }

    /// The mapping configuration.
    pub fn config(&self) -> &PlanarConfig {
        &self.cfg
    }

    /// Groups are formed by *striding* the page index (page `p` belongs
    /// to group `p mod groups`), so neighbouring pages fall into distinct
    /// groups and a contiguous hot region can be fully DRAM-resident —
    /// one page per group. Contiguous grouping would cap the DRAM share
    /// of any dense hot set at 1/(ratio+1).
    fn split(&self, addr: Addr) -> (u64, usize, u64) {
        let page = addr.block_index(self.cfg.page_bytes);
        let (slot, group) = self.groups_div.divmod(page);
        assert!(
            (slot as usize) < self.cfg.group_pages(),
            "address beyond configured capacity"
        );
        (group, slot as usize, addr.offset_in(self.cfg.page_bytes))
    }

    /// Group-major page index of in-group `slot` of `group` — the key
    /// into [`Self::pages`].
    #[inline]
    fn page_idx(&self, group: u64, slot: usize) -> u64 {
        group * self.cfg.group_pages() as u64 + slot as u64
    }

    fn dram_addr(&self, group: u64, offset: u64) -> Addr {
        Addr::new(group * self.cfg.page_bytes + offset)
    }

    fn xpoint_addr(&self, group: u64, sub_slot: u16, offset: u64) -> Addr {
        Addr::new((group * self.cfg.ratio as u64 + sub_slot as u64) * self.cfg.page_bytes + offset)
    }

    /// Resolves a logical address to its current physical location.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the configured capacity.
    pub fn lookup(&self, addr: Addr) -> PlanarLocation {
        let (group, slot, offset) = self.split(addr);
        if *self.residents.get(group) as usize == slot {
            PlanarLocation::Dram(self.dram_addr(group, offset))
        } else {
            let enc = self.pages.get(self.page_idx(group, slot)).slot_enc;
            let sub = decode_sub(slot, enc).expect("non-resident page must be in XPoint");
            PlanarLocation::XPoint(self.xpoint_addr(group, sub, offset))
        }
    }

    /// Records an access to a logical address; if this makes an
    /// XPoint-resident page hot, returns the swap the controller should
    /// schedule. Counters of the group reset when a swap is requested.
    ///
    /// A swap whose demotion target (the hot page's XPoint sub-slot) has
    /// been retired is suppressed instead: the current DRAM resident stays
    /// pinned, the group's counters still reset (so the dead page does not
    /// re-trigger every access), and [`Self::pinned_swaps`] counts the
    /// suppression.
    pub fn record_access(&mut self, addr: Addr) -> Option<SwapRequest> {
        let (group, slot, _) = self.split(addr);
        let group_pages = self.cfg.group_pages() as u64;
        let threshold = self.cfg.hot_threshold;
        let ratio = self.cfg.ratio as u64;
        let resident = *self.residents.get(group) as usize;
        let idx = self.page_idx(group, slot);
        let st = self.pages.get_mut(idx);
        st.counter += 1;
        if slot == resident || st.counter < threshold {
            return None;
        }
        let sub_slot = decode_sub(slot, st.slot_enc).expect("hot page must be in XPoint");
        // Reset the whole group's counters. Pages never touched hold a
        // zero counter already — skip them so the reset cannot
        // materialize chunks.
        let base = group * group_pages;
        for s in 0..group_pages {
            if self.pages.get(base + s).counter != 0 {
                self.pages.get_mut(base + s).counter = 0;
            }
        }
        if self
            .retired_xp_pages
            .contains(&(group * ratio + sub_slot as u64))
        {
            self.pinned_swaps += 1;
            return None;
        }
        Some(SwapRequest {
            group,
            promote_page: base + slot as u64,
            demote_page: base + resident as u64,
            dram_addr: self.dram_addr(group, 0),
            xpoint_addr: self.xpoint_addr(group, sub_slot, 0),
            page_bytes: self.cfg.page_bytes,
        })
    }

    /// Commits a completed swap: the promoted page becomes the DRAM
    /// resident, the demoted page takes its XPoint sub-slot.
    ///
    /// # Panics
    ///
    /// Panics if the request does not match the current mapping (e.g. the
    /// page was already promoted by a racing swap).
    pub fn commit_swap(&mut self, req: &SwapRequest) {
        let group_pages = self.cfg.group_pages() as u64;
        let promote_slot = (req.promote_page % group_pages) as usize;
        let demote_slot = (req.demote_page % group_pages) as usize;
        assert_eq!(
            *self.residents.get(req.group) as usize,
            demote_slot,
            "swap request stale: resident changed"
        );
        let promote_idx = self.page_idx(req.group, promote_slot);
        let demote_idx = self.page_idx(req.group, demote_slot);
        let sub = decode_sub(promote_slot, self.pages.get(promote_idx).slot_enc);
        assert!(sub.is_some(), "promoted page is already in DRAM");
        self.pages.get_mut(demote_idx).slot_enc = encode_sub(sub);
        self.pages.get_mut(promote_idx).slot_enc = encode_sub(None);
        self.residents.set(req.group, promote_slot as u16);
        self.swaps += 1;
    }

    /// Completed swaps so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Marks the XPoint device page containing `xpoint_addr` as retired
    /// (dead media): it will never again be offered as a swap target.
    /// Returns `true` if the page was newly retired.
    pub fn retire_xpoint_page(&mut self, xpoint_addr: Addr) -> bool {
        let page = xpoint_addr.block_index(self.cfg.page_bytes);
        if page >= self.cfg.groups() * self.cfg.ratio as u64 {
            return false; // outside the planner's XPoint window
        }
        self.retired_xp_pages.insert(page)
    }

    /// XPoint device pages retired so far.
    pub fn retired_xpoint_pages(&self) -> u64 {
        self.retired_xp_pages.len() as u64
    }

    /// Whether an XPoint device page is retired.
    pub fn is_xpoint_page_retired(&self, xpoint_addr: Addr) -> bool {
        self.retired_xp_pages
            .contains(&xpoint_addr.block_index(self.cfg.page_bytes))
    }

    /// Hot-page promotions suppressed because their demotion target was
    /// retired.
    pub fn pinned_swaps(&self) -> u64 {
        self.pinned_swaps
    }

    /// Heap bytes held by the materialized remap/hotness state. Scales
    /// with pages actually touched, not with
    /// [`capacity_bytes`](PlanarConfig::capacity_bytes).
    pub fn state_bytes(&self) -> usize {
        self.pages.heap_bytes()
            + self.residents.heap_bytes()
            + self.retired_xp_pages.len() * 3 * std::mem::size_of::<u64>()
    }

    /// Number of sparse chunks materialized so far (diagnostic for
    /// bounded-memory tests).
    pub fn touched_chunks(&self) -> usize {
        self.pages.touched_chunks() + self.residents.touched_chunks()
    }

    /// Fraction of the XPoint tier still usable (retired pages excluded).
    pub fn usable_xpoint_fraction(&self) -> f64 {
        let total = self.cfg.groups() * self.cfg.ratio as u64;
        1.0 - self.retired_xp_pages.len() as f64 / total as f64
    }

    /// The effective XPoint:DRAM ratio after retirement — the configured
    /// ratio scaled by the usable fraction. Shrinks as the device ages.
    pub fn effective_ratio(&self) -> f64 {
        self.cfg.ratio as f64 * self.usable_xpoint_fraction()
    }

    /// Fraction of lookups that would currently land in DRAM for a given
    /// sequence of addresses (diagnostic helper).
    pub fn dram_hit_fraction(&self, addrs: &[Addr]) -> f64 {
        if addrs.is_empty() {
            return 0.0;
        }
        let hits = addrs.iter().filter(|&&a| self.lookup(a).is_dram()).count();
        hits as f64 / addrs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GROUPS: u64 = 4;
    const PAGE: u64 = 4096;

    fn small() -> PlanarMapping {
        PlanarMapping::new(PlanarConfig {
            page_bytes: PAGE,
            ratio: 8,
            hot_threshold: 4,
            capacity_bytes: GROUPS * 9 * PAGE,
        })
    }

    /// Address of the page in `group` at in-group `slot` under the
    /// strided group mapping (page index = slot * groups + group).
    fn page_addr(group: u64, slot: u64) -> Addr {
        Addr::new((slot * GROUPS + group) * PAGE)
    }

    fn drive_swap(m: &mut PlanarMapping, addr: Addr) -> SwapRequest {
        loop {
            if let Some(req) = m.record_access(addr) {
                return req;
            }
        }
    }

    #[test]
    fn geometry() {
        let m = small();
        assert_eq!(m.config().groups(), GROUPS);
        assert_eq!(m.config().dram_bytes(), GROUPS * PAGE);
        assert_eq!(m.config().xpoint_bytes(), GROUPS * 8 * PAGE);
    }

    #[test]
    fn initial_mapping_slot0_in_dram() {
        let m = small();
        for g in 0..GROUPS {
            assert!(m.lookup(page_addr(g, 0)).is_dram(), "group {g} slot 0");
            for s in 1..9 {
                assert!(!m.lookup(page_addr(g, s)).is_dram(), "group {g} slot {s}");
            }
        }
    }

    #[test]
    fn neighbouring_pages_fall_into_distinct_groups() {
        let m = small();
        // Pages 0..groups are each the DRAM resident of their own group:
        // a dense hot region can be fully DRAM-resident.
        for p in 0..GROUPS {
            assert!(m.lookup(Addr::new(p * PAGE)).is_dram(), "page {p}");
        }
    }

    #[test]
    fn lookup_preserves_offset() {
        let m = small();
        let loc = m.lookup(page_addr(2, 3).offset(123));
        assert_eq!(loc.addr().offset_in(PAGE), 123);
    }

    #[test]
    fn hot_page_triggers_swap_and_remap() {
        let mut m = small();
        let hot = page_addr(0, 3);
        let req = drive_swap(&mut m, hot);
        assert_eq!(req.group, 0);
        m.commit_swap(&req);
        assert!(m.lookup(hot).is_dram());
        assert!(!m.lookup(page_addr(0, 0)).is_dram());
        assert_eq!(m.swaps(), 1);
    }

    #[test]
    fn demoted_page_takes_vacated_xp_slot() {
        let mut m = small();
        let hot = page_addr(1, 3);
        let old_xp = m.lookup(hot).addr();
        let req = drive_swap(&mut m, hot);
        m.commit_swap(&req);
        // The demoted page (old slot 0 of group 1) now sits where the hot
        // page was.
        assert_eq!(m.lookup(page_addr(1, 0)), PlanarLocation::XPoint(old_xp));
    }

    #[test]
    fn dram_resident_accesses_never_trigger() {
        let mut m = small();
        for _ in 0..100 {
            assert!(m.record_access(page_addr(2, 0).offset(5)).is_none());
        }
    }

    #[test]
    fn counters_reset_after_swap_request() {
        let mut m = small();
        let a = page_addr(0, 1);
        let b = page_addr(0, 2);
        for _ in 0..3 {
            assert!(m.record_access(a).is_none());
        }
        for _ in 0..3 {
            assert!(m.record_access(b).is_none());
        }
        let req = m.record_access(a).expect("a reaches threshold first");
        m.commit_swap(&req);
        // b's counter was reset: three more accesses stay quiet.
        for _ in 0..3 {
            assert!(m.record_access(b).is_none());
        }
        assert!(m.record_access(b).is_some());
    }

    #[test]
    fn chained_swaps_stay_consistent() {
        let mut m = small();
        // Promote slot 1, then slot 2, then slot 1 again, all in group 0.
        for target in [1u64, 2, 1] {
            let a = page_addr(0, target);
            let req = drive_swap(&mut m, a);
            m.commit_swap(&req);
            assert!(m.lookup(a).is_dram());
        }
        // All nine pages of group 0 still resolve to distinct locations.
        let mut seen = std::collections::BTreeSet::new();
        for s in 0..9u64 {
            let loc = m.lookup(page_addr(0, s));
            assert!(seen.insert((loc.is_dram(), loc.addr())), "dup at slot {s}");
        }
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_swap_rejected() {
        let mut m = small();
        let r1 = drive_swap(&mut m, page_addr(3, 1));
        let r2 = drive_swap(&mut m, page_addr(3, 2));
        m.commit_swap(&r2);
        m.commit_swap(&r1); // resident changed: must panic
    }

    #[test]
    fn retired_page_is_never_a_swap_target() {
        let mut m = small();
        let hot = page_addr(0, 3);
        // Retire the device page currently backing the hot page — the
        // slot its demoted partner would land on.
        let dead = m.lookup(hot).addr();
        assert!(m.retire_xpoint_page(dead));
        assert!(!m.retire_xpoint_page(dead), "idempotent");
        assert!(m.is_xpoint_page_retired(dead));
        // Hammering the hot page now pins the resident instead of
        // demoting it onto dead media.
        for _ in 0..64 {
            if let Some(req) = m.record_access(hot) {
                panic!("swap offered onto retired page: {req:?}");
            }
        }
        assert!(m.pinned_swaps() >= 1);
        assert_eq!(m.swaps(), 0);
        assert!(m.lookup(page_addr(0, 0)).is_dram(), "resident pinned");
        // Other groups are unaffected.
        let req = drive_swap(&mut m, page_addr(1, 2));
        m.commit_swap(&req);
        assert_eq!(m.swaps(), 1);
    }

    #[test]
    fn usable_fraction_and_effective_ratio_shrink() {
        let mut m = small();
        assert_eq!(m.usable_xpoint_fraction(), 1.0);
        assert_eq!(m.effective_ratio(), 8.0);
        // Retire a quarter of the XPoint pages (8 of 32).
        for p in 0..8u64 {
            assert!(m.retire_xpoint_page(Addr::new(p * PAGE)));
        }
        assert_eq!(m.retired_xpoint_pages(), 8);
        assert!((m.usable_xpoint_fraction() - 0.75).abs() < 1e-12);
        assert!((m.effective_ratio() - 6.0).abs() < 1e-12);
        // Addresses past the planner's XPoint window are ignored.
        assert!(!m.retire_xpoint_page(Addr::new(GROUPS * 8 * PAGE)));
    }

    #[test]
    fn pinning_still_resets_counters() {
        let mut m = small();
        let hot = page_addr(2, 1);
        let dead = m.lookup(hot).addr();
        m.retire_xpoint_page(dead);
        // Reaching the threshold suppresses the swap and resets counters:
        // the next access does not immediately re-trigger.
        for _ in 0..4 {
            assert!(m.record_access(hot).is_none());
        }
        assert_eq!(m.pinned_swaps(), 1);
        for _ in 0..3 {
            assert!(m.record_access(hot).is_none());
        }
        assert_eq!(m.pinned_swaps(), 1, "threshold must be re-earned");
    }
}
