#!/usr/bin/env bash
# SIGKILL-restart chaos test for the ohm-serve daemon (DESIGN.md §3.11).
#
# Sibling of tools/chaos_resume.sh, aimed at the daemon instead of the
# in-process sweep runner:
#   1. runs the smoke job against an uninterrupted daemon to capture the
#      reference digest;
#   2. boots a fresh daemon on a clean state directory, submits the same
#      job, and SIGKILLs the daemon as soon as its cache journal holds at
#      least one record (plus a deliberately torn frame appended — the
#      worst case a mid-write kill can leave);
#   3. restarts the daemon on the survived state directory and waits for
#      the job — which must resume under its original id — to finish.
#
# Fails (exit 1) if the resumed digest diverges from the reference, if
# the restarted daemon replayed nothing from the journal, or if any cell
# quarantined.
#
# Usage: tools/serve_chaos.sh [path/to/ohm-serve [path/to/ohm_client]]
set -euo pipefail

SERVE=${1:-./target/release/ohm-serve}
CLIENT=${2:-./target/release/ohm_client}
WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
JOURNAL="$WORK/state/cache.ohmj"
# The smoke job is 2 platforms x 2 workloads.
TOTAL=4

# Boots a daemon on $WORK/state; sets SERVE_PID and ADDR (HOST:PORT).
boot() {
  "$SERVE" --addr 127.0.0.1:0 --state-dir "$WORK/state" --workers 2 \
    >"$WORK/serve.out" 2>"$WORK/serve.err" &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^ohm-serve listening on //p' "$WORK/serve.out")
    [ -n "$ADDR" ] && return
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.err" >&2; exit 1; }
    sleep 0.1
  done
  echo "::error::daemon never printed its address" >&2
  exit 1
}

digest_of() { awk '/^digest / {print $2}' "$1"; }

echo "== reference run (uninterrupted daemon) =="
boot
"$CLIENT" --addr "$ADDR" smoke | tee "$WORK/ref.txt"
REF_DIGEST=$(digest_of "$WORK/ref.txt")
[ -n "$REF_DIGEST" ] || { echo "::error::no digest from reference run"; exit 1; }
kill -9 "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true; SERVE_PID=""
rm -rf "$WORK/state"

echo "== fresh daemon, SIGKILL mid-job =="
boot
JOB=$("$CLIENT" --addr "$ADDR" submit <(printf '%s' \
  '{"config": {"base": "quick_test", "insts_per_warp": 200, "seed": 3},
    "platforms": ["Ohm-base", "Hetero"], "workloads": ["lud", "pagerank"]}'))
echo "submitted $JOB"
# Kill as soon as the cache journal holds one verified record. If the
# job is too fast to catch, it simply completes — the restart assertions
# below still hold (everything served from cache).
for _ in $(seq 1 600); do
  if [ -f "$JOURNAL" ] && [ "$(grep -c '^REC ' "$JOURNAL" 2>/dev/null || true)" -ge 1 ]; then
    break
  fi
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
kill -9 "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true; SERVE_PID=""
RECORDS=$(grep -c '^REC ' "$JOURNAL" || true)
echo "cache journal survived the kill with $RECORDS record(s)"
[ "$RECORDS" -ge 1 ] || { echo "::error::kill landed before any cell was journalled"; exit 1; }
# Worst-case tail: a frame torn mid-write. Recovery must truncate it.
printf 'REC 00deadbeef' >>"$JOURNAL"

echo "== restarted daemon resumes the job =="
boot
"$CLIENT" --addr "$ADDR" wait "$JOB" | tee "$WORK/resumed.txt"
RES_DIGEST=$(digest_of "$WORK/resumed.txt")
STATUS=$("$CLIENT" --addr "$ADDR" status "$JOB")
STATS=$("$CLIENT" --addr "$ADDR" stats)
echo "$STATUS"
echo "$STATS"

if [ "$RES_DIGEST" != "$REF_DIGEST" ]; then
  echo "::error::resumed digest $RES_DIGEST diverged from reference $REF_DIGEST"
  exit 1
fi
HITS=$(sed -n 's/.*"hits":\([0-9]*\).*/\1/p' <<<"$STATS")
if [ -z "$HITS" ] || [ "$HITS" -lt 1 ]; then
  echo "::error::restart replayed no cells from the cache journal (hits=${HITS:-?})"
  exit 1
fi
if ! grep -q '"quarantined":0' <<<"$STATUS"; then
  echo "::error::resumed job quarantined cells: $STATUS"
  exit 1
fi
if ! grep -q "\"resolved\":$TOTAL" <<<"$STATUS"; then
  echo "::error::cells dropped on resume: $STATUS"
  exit 1
fi
echo "serve chaos OK: digest $RES_DIGEST, $HITS cell(s) served from the survived journal"
