#!/usr/bin/env bash
# Kill-resume chaos test for durable sweeps (DESIGN.md §3.10).
#
# Runs the perf_baseline smoke grid three times:
#   1. uninterrupted with a checkpoint, to capture the reference
#      `grid_digest:` (bit-exact content digest of every cell);
#   2. with a checkpoint journal, SIGKILLed as soon as the journal holds
#      at least one record (plus a deliberately torn frame appended, the
#      worst case a mid-write kill can leave);
#   3. resumed from the survived journal.
#
# Fails (exit 1) if the resumed digest diverges from the reference, if
# the resume replayed nothing from the journal, or if any cell was
# quarantined, timed out, or silently dropped.
#
# Usage: tools/chaos_resume.sh [path/to/perf_baseline]
set -euo pipefail

BIN=${1:-./target/release/perf_baseline}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
JOURNAL="$WORK/grid.ohmj"
# The smoke grid is 3 platforms x 2 workloads.
TOTAL=6

digest_of() { awk '/^grid_digest:/ {print $2}' "$1"; }

echo "== reference run (uninterrupted) =="
"$BIN" --smoke --no-compare --checkpoint "$WORK/ref.ohmj" --out "$WORK/ref.json" \
  | tee "$WORK/ref.txt"
REF_DIGEST=$(digest_of "$WORK/ref.txt")
[ -n "$REF_DIGEST" ] || { echo "::error::no grid_digest in reference output"; exit 1; }

echo "== checkpointed run, SIGKILL partway =="
"$BIN" --smoke --no-compare --checkpoint "$JOURNAL" --out "$WORK/killed.json" \
  >"$WORK/killed.txt" 2>&1 &
PID=$!
# Kill as soon as the journal holds one verified record. If the run is
# too fast to catch, it simply completes — the resume assertions below
# still hold (everything cached).
for _ in $(seq 1 600); do
  if [ -f "$JOURNAL" ] && [ "$(grep -c '^REC ' "$JOURNAL" 2>/dev/null || true)" -ge 1 ]; then
    break
  fi
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
RECORDS=$(grep -c '^REC ' "$JOURNAL" || true)
echo "journal survived the kill with $RECORDS record(s)"
[ "$RECORDS" -ge 1 ] || { echo "::error::kill landed before any cell was journalled"; exit 1; }
# Worst-case tail: a frame torn mid-write. Resume must truncate it.
printf 'REC 00deadbeef' >>"$JOURNAL"

echo "== resumed run =="
"$BIN" --smoke --no-compare --checkpoint "$JOURNAL" --out "$WORK/resumed.json" \
  | tee "$WORK/resumed.txt"
RES_DIGEST=$(digest_of "$WORK/resumed.txt")
read -r COMPLETED CACHED QUARANTINED TIMED \
  <<<"$(awk '/^grid_cells:/ {print $2, $4, $6, $8}' "$WORK/resumed.txt")"

if [ "$RES_DIGEST" != "$REF_DIGEST" ]; then
  echo "::error::resumed grid_digest $RES_DIGEST diverged from reference $REF_DIGEST"
  exit 1
fi
if [ "$CACHED" -lt 1 ]; then
  echo "::error::resume replayed no cells from the journal (cached=$CACHED)"
  exit 1
fi
if [ "$QUARANTINED" -ne 0 ] || [ "$TIMED" -ne 0 ]; then
  echo "::error::resume quarantined=$QUARANTINED timed-out=$TIMED cells"
  exit 1
fi
if [ $((COMPLETED + CACHED)) -ne "$TOTAL" ]; then
  echo "::error::cells dropped: $COMPLETED completed + $CACHED cached != $TOTAL"
  exit 1
fi
echo "chaos resume OK: digest $RES_DIGEST, $CACHED cached + $COMPLETED re-simulated"
