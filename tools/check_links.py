#!/usr/bin/env python3
"""Check repo docs for dead intra-repo links and stale binary references.

Usage: python3 tools/check_links.py [FILE.md ...]

With no arguments, checks the default doc set (README, DESIGN,
EXPERIMENTS, ROADMAP, docs/*.md). Two classes of failure:

* A markdown link ``[text](path)`` whose target is a relative path that
  does not exist (external http(s)/mailto links and pure ``#anchor``
  links are skipped; an in-repo target's ``#fragment`` is ignored).
* A ``--bin NAME`` reference to a harness binary that has no
  ``crates/bench/src/bin/NAME.rs`` — i.e. docs still advertising a
  deleted or renamed binary.

Exits non-zero listing every offence, so CI fails on doc rot.
"""

import glob
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DEFAULT_DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    *sorted(
        os.path.relpath(p, REPO) for p in glob.glob(os.path.join(REPO, "docs", "*.md"))
    ),
]

# [text](target) — excluding images' extra bang is fine: same syntax.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BIN_REF = re.compile(r"--bin[ =]([A-Za-z0-9_\-]+)")


def check_file(relpath):
    errors = []
    path = os.path.join(REPO, relpath)
    if not os.path.exists(path):
        return [f"{relpath}: file itself is missing"]
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()

    in_fence = False
    for lineno, line in enumerate(lines, 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence

        for target in LINK.findall(line):
            if in_fence:
                continue
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:  # pure anchor
                continue
            # Relative to the linking file, like a rendered page resolves it.
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                errors.append(f"{relpath}:{lineno}: dead link -> {target}")

        for name in BIN_REF.findall(line):
            src = os.path.join(REPO, "crates", "bench", "src", "bin", f"{name}.rs")
            if not os.path.exists(src):
                errors.append(f"{relpath}:{lineno}: no such binary -> --bin {name}")

    return errors


def main():
    docs = sys.argv[1:] or DEFAULT_DOCS
    errors = []
    for doc in docs:
        errors.extend(check_file(doc))
    for e in errors:
        print(e)
    if errors:
        print(f"\n{len(errors)} dead reference(s) across {len(docs)} file(s)")
        return 1
    print(f"checked {len(docs)} file(s): all intra-repo links and --bin references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
